"""Static extraction of a program's placement-relevant structure.

The planner does not need the full analyzer report — only, per task the
runtime will actually schedule, the *effective* regions the task's whole
subtree touches.  Both come from machinery `repro.analysis` already has:
:func:`~repro.analysis.expansion.expand_task` unfolds the split structure
without executing bodies, and
:func:`~repro.analysis.races.effective_requirements` folds declared
requirements bottom-up.  Extraction keeps the expansion *frontier* —
the deepest expanded level of each root — as the planning units: those
are exactly the tasks whose names the runtime reproduces when it splits
to the same granularity, so plans can pin them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.coverage import check_coverage
from repro.analysis.expansion import AnalysisConfig, TaskNode, expand_task
from repro.analysis.findings import Finding
from repro.analysis.program import TaskProgram
from repro.analysis.races import effective_requirements
from repro.items.base import DataItem
from repro.regions.base import Region


@dataclass
class PlacementTask:
    """One planning unit: an expansion-frontier task and its regions.

    ``reads``/``writes`` are the *effective* (subtree-unioned) regions,
    keyed by data-item name — the plan must survive being applied to a
    different runtime's item instances, and canonical region interning
    makes same-shape regions compare equal across them.
    """

    name: str
    path: str
    phase: int
    flops: float
    reads: dict[str, Region]
    writes: dict[str, Region]
    #: task names from the root down to this task's parent
    ancestors: tuple[str, ...]
    #: splittable but not expanded — regions still subsume the subtree
    truncated: bool = False

    def accessed_names(self) -> list[str]:
        return sorted(set(self.reads) | set(self.writes))


@dataclass
class ExtractedProgram:
    """Everything :func:`~repro.placement.planner.plan_placement` consumes."""

    label: str
    tasks: list[PlacementTask] = field(default_factory=list)
    #: item name → a representative instance (for shapes and byte weights)
    items: dict[str, DataItem] = field(default_factory=dict)
    expanded: int = 0
    truncated: int = 0
    findings: list[Finding] = field(default_factory=list)


def extract_program(
    program: TaskProgram,
    config: AnalysisConfig | None = None,
) -> ExtractedProgram:
    """Expand every root of a phased program into planning units."""
    config = config or AnalysisConfig(races=False, lint=False)
    out = ExtractedProgram(label=program.label)
    for phase_index, phase in enumerate(program.phases):
        for spec in phase:
            root, expanded, truncated = expand_task(spec, config, out.findings)
            out.expanded += expanded
            out.truncated += truncated
            if config.coverage:
                out.findings.extend(check_coverage(root, config))
            efforts = effective_requirements(root)
            for node, ancestors in _frontier(root):
                eff = efforts[id(node)]
                reads: dict[str, Region] = {}
                writes: dict[str, Region] = {}
                for item, region in eff.writes.items():
                    out.items.setdefault(item.name, item)
                    writes[item.name] = region
                for item, region in eff.reads.items():
                    out.items.setdefault(item.name, item)
                    reads[item.name] = region
                out.tasks.append(
                    PlacementTask(
                        name=node.spec.name,
                        path=node.path,
                        phase=phase_index,
                        flops=float(node.spec.flops),
                        reads=reads,
                        writes=writes,
                        ancestors=ancestors,
                        truncated=node.truncated,
                    )
                )
    return out


def _frontier(root: TaskNode) -> Iterator[tuple[TaskNode, tuple[str, ...]]]:
    """Pre-order ``(leaf, ancestor-names)`` pairs of the expanded tree."""
    stack: list[tuple[TaskNode, tuple[str, ...]]] = [(root, ())]
    while stack:
        node, ancestors = stack.pop()
        if node.children:
            below = ancestors + (node.spec.name,)
            stack.extend((child, below) for child in reversed(node.children))
        else:
            yield node, ancestors
