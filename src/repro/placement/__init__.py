"""Offline placement planning (paper §3.2, taken ahead of time).

The runtime's :class:`~repro.runtime.policies.DataAwarePolicy` decides
placement *online*, one task at a time, from whatever ownership the index
has accumulated so far.  This package moves the same decision *offline*:
the static analyzer's bounded expansion yields every task's effective
data requirements without running a single body, the architecture model
supplies link costs between processes, and a min-cost assignment over
the two produces a :class:`~repro.placement.plan.PlacementPlan` — an
initial data-item layout plus task→process pins — that the runtime
consumes through :class:`~repro.placement.policy.PlannedPolicy`.
"""

from repro.placement.extract import (
    ExtractedProgram,
    PlacementTask,
    extract_program,
)
from repro.placement.plan import PlacementPlan
from repro.placement.planner import CostModel, plan_placement
from repro.placement.policy import PlannedPolicy

__all__ = [
    "CostModel",
    "ExtractedProgram",
    "PlacementPlan",
    "PlacementTask",
    "PlannedPolicy",
    "extract_program",
    "plan_placement",
]
