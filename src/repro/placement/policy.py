"""The runtime-facing half of the planner: a pinning scheduling policy."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.items.base import DataItem
from repro.placement.plan import PlacementPlan
from repro.regions.base import Region
from repro.runtime.policies import (
    DataAwarePolicy,
    PlacementContext,
    SchedulingPolicy,
)
from repro.runtime.tasks import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime

#: same write dominance as the plan's cost model and the online policy
_WRITE_WEIGHT = 4.0


class PlannedPolicy(SchedulingPolicy):
    """Route tasks along an offline :class:`PlacementPlan`.

    Three tiers, strongest evidence first: the plan's explicit name pin;
    the plan's *layout* (largest weighted overlap of the task's regions
    with the planned per-process ownership — catches tasks split finer
    than the plan's expansion frontier); and finally the wrapped online
    policy, so unplanned tasks behave exactly like the default runtime.

    The runtime also consults ``planned_layout`` at item registration to
    pre-distribute ownership, and the scheduler consults
    ``preferred_target`` to break requirement-coverage ties toward the
    pin — both are ignored for runtimes the plan was not sized for.
    """

    def __init__(
        self,
        plan: PlacementPlan,
        fallback: SchedulingPolicy | None = None,
    ) -> None:
        self.plan = plan
        self.fallback = fallback if fallback is not None else DataAwarePolicy()

    def reset(self) -> None:
        self.fallback.reset()

    # -- planner hooks (consulted by runtime and scheduler) ----------------------

    def planned_layout(
        self, item: DataItem, num_processes: int
    ) -> list[Region] | None:
        """The item's planned initial ownership, if the plan applies."""
        return self.plan.layout_for(item.name, num_processes)

    def preferred_target(self, task: TaskSpec) -> int | None:
        """The plan's pin for this task name, if any."""
        return self.plan.pins.get(task.name)

    # -- SchedulingPolicy --------------------------------------------------------

    def pick_variant(self, task: TaskSpec, runtime: "AllScaleRuntime") -> str:
        return self.fallback.pick_variant(task, runtime)

    def pick_target(self, task: TaskSpec, ctx: PlacementContext) -> int:
        processes = ctx.runtime.num_processes
        pin = self.plan.pins.get(task.name)
        if pin is not None and 0 <= pin < processes:
            return pin
        pid = self._layout_vote(task, processes)
        if pid is not None:
            return pid
        return self.fallback.pick_target(task, ctx)

    def _layout_vote(self, task: TaskSpec, processes: int) -> int | None:
        best: tuple[float, int] | None = None
        for item in task.accessed_items_ordered():
            layout = self.plan.layout_for(item.name, processes)
            if layout is None:
                continue
            for kind, weight in (("w", _WRITE_WEIGHT), ("r", 1.0)):
                wanted = (
                    task.write_region(item)
                    if kind == "w"
                    else task.read_region(item)
                )
                if wanted.is_empty():
                    continue
                for pid, owned in enumerate(layout):
                    overlap = owned.intersect(wanted)
                    if overlap.is_empty():
                        continue
                    score = weight * item.region_bytes(overlap)
                    if best is None or (score, -pid) > (best[0], -best[1]):
                        best = (score, pid)
        return best[1] if best is not None else None
