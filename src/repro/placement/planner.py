"""Min-cost assignment of extracted tasks to processes.

An ILP would phrase it as: minimize Σ transfer_seconds(t, p(t)) subject
to per-process load bounds.  That exact formulation is overkill for the
tree-structured instances the apps produce, so the solver here is the
classic practical relaxation — a greedy seeding pass followed by bounded
local-search refinement — which is deterministic, dependency-free, and
lands the provably-good cases (fully fresh phases, data-following
phases) exactly where the optimum is:

1. *Seeding*, phase by phase in submission order.  Tasks whose regions
   overlap nothing placed so far ("fresh", the initialization sweeps)
   are dealt out in contiguous flops-balanced chunks — tree order is
   spatial order, so each process receives one compact block instead of
   a round-robin interleave that would shred halo locality.  Tasks that
   do touch placed data go to the process minimizing estimated transfer
   time.  Either way the task then *claims* the still-unowned parts of
   its regions, so later phases see the layout earlier phases induced.
2. *Refinement*: a few deterministic sweeps moving single tasks to a
   cheaper process, accepted only when transfer time strictly drops and
   the bottleneck load does not grow.

The final claims become the plan's initial layouts; task names (frontier
and interior, interior pinned where their heaviest descendant went)
become the pins.
"""

from __future__ import annotations

from repro.analysis.expansion import AnalysisConfig
from repro.analysis.program import TaskProgram
from repro.items.base import DataItem
from repro.placement.extract import PlacementTask, extract_program
from repro.placement.plan import PlacementPlan
from repro.regions.base import Region
from repro.sim.cluster import Cluster

#: write regions dominate placement — same ratio the online policy uses
WRITE_WEIGHT = 4.0
READ_WEIGHT = 1.0


class CostModel:
    """Time costs over the bipartite compute–memory architecture model.

    Compute nodes are the processes; memories are the per-node fragment
    stores; the links between them carry the fat-tree switch distance.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.topology = cluster.topology
        spec = cluster.spec
        self.node_flops = float(spec.cores_per_node * spec.flops_per_core)
        self.bandwidth = float(spec.network.bandwidth)

    def transfer_seconds(self, nbytes: float, src: int, dst: int) -> float:
        """Time to pull ``nbytes`` from ``src``'s memory to ``dst``'s."""
        if src == dst or nbytes <= 0:
            return 0.0
        return nbytes * self.topology.switch_hops(src, dst) / self.bandwidth

    def compute_seconds(self, flops: float) -> float:
        return flops / self.node_flops


def default_analysis_config(processes: int) -> AnalysisConfig:
    """Expansion bounds giving each process a handful of frontier tasks."""
    depth = 2
    while (1 << depth) < 4 * processes and depth < 10:
        depth += 1
    return AnalysisConfig(
        max_depth=depth,
        max_nodes=4096,
        races=False,
        lint=False,
    )


def plan_placement(
    program: TaskProgram,
    cluster: Cluster,
    config: AnalysisConfig | None = None,
    refine_rounds: int = 2,
) -> PlacementPlan:
    """Solve the offline assignment for ``program`` on ``cluster``."""
    processes = cluster.spec.num_nodes
    extracted = extract_program(
        program, config or default_analysis_config(processes)
    )
    cost = CostModel(cluster)
    tasks = extracted.tasks
    items = extracted.items

    assignment, loads, claims = _seed(tasks, items, processes, cost)
    moves = _refine(
        tasks, items, processes, cost, assignment, loads, claims, refine_rounds
    )
    if moves:
        # claims were induced by the seeding order; rebuild them so the
        # layout matches where refinement actually put the tasks
        claims = _claims_for(tasks, items, processes, assignment)

    plan = PlacementPlan(label=extracted.label, processes=processes)
    plan.layouts = {
        name: regions
        for name, regions in claims.items()
        if any(not region.is_empty() for region in regions)
    }
    plan.pins = _pins(tasks, assignment)
    total_transfer = sum(
        _task_seconds(task, pid, claims, items, cost)
        for task, pid in zip(tasks, assignment)
    )
    plan.stats = {
        "tasks": float(len(tasks)),
        "tasks_truncated": float(sum(1 for t in tasks if t.truncated)),
        "expanded": float(extracted.expanded),
        "refine_moves": float(moves),
        "est_transfer_seconds": total_transfer,
        "load_max": max(loads, default=0.0),
        "load_mean": sum(loads) / processes if processes else 0.0,
    }
    return plan


# -- seeding ---------------------------------------------------------------------


def _seed(
    tasks: list[PlacementTask],
    items: dict[str, DataItem],
    processes: int,
    cost: CostModel,
) -> tuple[list[int], list[float], dict[str, list[Region]]]:
    claims = _empty_claims(items, processes)
    loads = [0.0] * processes
    assignment: list[int] = []
    phase_count = 1 + max((t.phase for t in tasks), default=0)
    cursor = 0
    for phase in range(phase_count):
        phase_tasks: list[PlacementTask] = []
        while cursor + len(phase_tasks) < len(tasks):
            task = tasks[cursor + len(phase_tasks)]
            if task.phase != phase:
                break
            phase_tasks.append(task)
        cursor += len(phase_tasks)
        # freshness is judged against the phase-*start* claims: siblings
        # within a phase are unordered, so their own claims must not
        # flip each other from "chunk evenly" to "follow the data"
        fresh = [not _touches(t, claims, items) for t in phase_tasks]
        fresh_total = sum(
            t.flops for t, is_fresh in zip(phase_tasks, fresh) if is_fresh
        )
        fresh_cum = 0.0
        phase_loads = [0.0] * processes
        phase_mean = sum(t.flops for t in phase_tasks) / processes
        for task, is_fresh in zip(phase_tasks, fresh):
            if is_fresh and fresh_total > 0:
                pid = min(processes - 1, int(processes * fresh_cum / fresh_total))
                fresh_cum += task.flops
            elif is_fresh:
                pid = min(range(processes), key=lambda p: (loads[p], p))
            else:
                pid = _cheapest_pid(
                    task, claims, items, processes, cost, loads,
                    phase_loads, phase_mean,
                )
            assignment.append(pid)
            loads[pid] += task.flops
            phase_loads[pid] += task.flops
            _claim(task, pid, claims, items)
    return assignment, loads, claims


def _empty_claims(
    items: dict[str, DataItem], processes: int
) -> dict[str, list[Region]]:
    return {
        name: [item.empty_region() for _ in range(processes)]
        for name, item in items.items()
    }


def _touches(
    task: PlacementTask,
    claims: dict[str, list[Region]],
    items: dict[str, DataItem],
) -> bool:
    for name in task.accessed_names():
        wanted = _accessed(task, name, items)
        for claimed in claims[name]:
            if claimed.overlaps(wanted):
                return True
    return False


def _accessed(
    task: PlacementTask, name: str, items: dict[str, DataItem]
) -> Region:
    read = task.reads.get(name, items[name].empty_region())
    write = task.writes.get(name, items[name].empty_region())
    return read.union(write)


def _cheapest_pid(
    task: PlacementTask,
    claims: dict[str, list[Region]],
    items: dict[str, DataItem],
    processes: int,
    cost: CostModel,
    loads: list[float],
    phase_loads: list[float],
    phase_mean: float,
) -> int:
    """Process minimizing transfer time plus expected queueing delay.

    Phases end in a barrier, so a process loaded above the phase mean
    delays the whole phase; charging that excess as compute time lets
    tasks spill off a hot process once the wait exceeds the transfer.
    """
    best: tuple[float, float, int] | None = None
    for pid in range(processes):
        seconds = _task_seconds(task, pid, claims, items, cost)
        queueing = max(0.0, phase_loads[pid] + task.flops - phase_mean)
        key = (seconds + cost.compute_seconds(queueing), loads[pid], pid)
        if best is None or key < best:
            best = key
    assert best is not None
    return best[2]


def _task_seconds(
    task: PlacementTask,
    pid: int,
    claims: dict[str, list[Region]],
    items: dict[str, DataItem],
    cost: CostModel,
) -> float:
    """Estimated time to pull the task's remote bytes to ``pid``."""
    seconds = 0.0
    for weight, regions in ((WRITE_WEIGHT, task.writes), (READ_WEIGHT, task.reads)):
        for name, wanted in regions.items():
            item = items[name]
            for owner, claimed in enumerate(claims[name]):
                if owner == pid:
                    continue
                overlap = claimed.intersect(wanted)
                if not overlap.is_empty():
                    seconds += weight * cost.transfer_seconds(
                        item.region_bytes(overlap), owner, pid
                    )
    return seconds


def _claim(
    task: PlacementTask,
    pid: int,
    claims: dict[str, list[Region]],
    items: dict[str, DataItem],
) -> None:
    """Claim the still-unowned parts of the task's regions for ``pid``."""
    for name in task.accessed_names():
        wanted = _accessed(task, name, items)
        for claimed in claims[name]:
            if wanted.is_empty():
                break
            wanted = wanted.difference(claimed)
        if not wanted.is_empty():
            claims[name][pid] = claims[name][pid].union(wanted)


def _claims_for(
    tasks: list[PlacementTask],
    items: dict[str, DataItem],
    processes: int,
    assignment: list[int],
) -> dict[str, list[Region]]:
    claims = _empty_claims(items, processes)
    for task, pid in zip(tasks, assignment):
        _claim(task, pid, claims, items)
    return claims


# -- refinement ------------------------------------------------------------------


def _refine(
    tasks: list[PlacementTask],
    items: dict[str, DataItem],
    processes: int,
    cost: CostModel,
    assignment: list[int],
    loads: list[float],
    claims: dict[str, list[Region]],
    rounds: int,
) -> int:
    """Single-task moves that cut transfer time without a worse bottleneck."""
    moves = 0
    for _ in range(max(0, rounds)):
        improved = False
        for index, task in enumerate(tasks):
            current = assignment[index]
            here = _task_seconds(task, current, claims, items, cost)
            if here <= 0.0:
                continue
            bottleneck = max(loads)
            best: tuple[float, int] | None = None
            for pid in range(processes):
                if pid == current:
                    continue
                if loads[pid] + task.flops > bottleneck:
                    continue
                there = _task_seconds(task, pid, claims, items, cost)
                if there < here and (best is None or (there, pid) < best):
                    best = (there, pid)
            if best is not None:
                loads[current] -= task.flops
                loads[best[1]] += task.flops
                assignment[index] = best[1]
                moves += 1
                improved = True
        if not improved:
            break
    return moves


# -- pins ------------------------------------------------------------------------


def _pins(tasks: list[PlacementTask], assignment: list[int]) -> dict[str, int]:
    """Name→process pins for frontier tasks and their interior ancestors.

    An interior task is pinned where its heaviest frontier descendant
    went — routing the subtree root toward its bulk keeps the scheduler's
    split cascade from bouncing work across the machine before the
    frontier pins can take hold.  A name observed with two different
    targets is ambiguous and dropped entirely.
    """
    pins: dict[str, int] = {}
    conflicted: set[str] = set()
    for task, pid in zip(tasks, assignment):
        if pins.setdefault(task.name, pid) != pid:
            conflicted.add(task.name)
    heaviest: dict[str, tuple[float, int]] = {}
    for task, pid in zip(tasks, assignment):
        for ancestor in task.ancestors:
            seen = heaviest.get(ancestor)
            if seen is None or task.flops > seen[0]:
                heaviest[ancestor] = (task.flops, pid)
    for name, (_, pid) in heaviest.items():
        if pins.setdefault(name, pid) != pid:
            conflicted.add(name)
    for name in conflicted:
        del pins[name]
    return pins
