"""Bundled model-checking scenarios: small clusters, adversarial protocols.

Each scenario is a factory of fresh, self-contained instances — a 2–3 node
runtime plus a driver that submits a handful of deliberately conflicting
tasks.  The explorer builds one instance per explored branch, so instances
must not share mutable state.  Every runtime-based instance attaches a
strict :class:`~repro.runtime.sentinel.RuntimeSentinel` (§2.5 invariants
raise mid-run) and checks the ownership invariants after completion; its
fingerprint hashes the *logical* terminal state — ownership layout and
fragment contents plus task results — never simulated timestamps, which
legitimately differ across schedules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.sentinel import RuntimeSentinel, SentinelConfig
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster, ClusterSpec


class ScenarioInstance:
    """One runnable copy of a scenario (engine + driver + fingerprint)."""

    def __init__(
        self,
        engine: Any,
        run: Callable[[], None],
        fingerprint: Callable[[], str],
    ) -> None:
        self.engine = engine
        self._run = run
        self._fingerprint = fingerprint

    def run(self) -> None:
        """Drive the scenario to completion; raises on any failure."""
        self._run()

    def fingerprint(self) -> str:
        return self._fingerprint()


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    build: Callable[[], ScenarioInstance]


def _make_runtime(nodes: int, **config: Any) -> AllScaleRuntime:
    cluster = Cluster(
        ClusterSpec(num_nodes=nodes, cores_per_node=1, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster, RuntimeConfig(functional=True, **config)
    )
    RuntimeSentinel(runtime, SentinelConfig(strict=True)).attach()
    return runtime


def _runtime_fingerprint(
    runtime: AllScaleRuntime, results: list[Any]
) -> str:
    digest = hashlib.sha256()
    for result in results:
        digest.update(repr(result).encode())
    for item in runtime.items:
        digest.update(item.name.encode())
        for process in runtime.processes:
            manager = process.data_manager
            owned = manager.owned_region(item)
            digest.update(f"|{process.pid}:{owned!r}".encode())
            if not owned.is_empty():
                payload = manager.fragment(item).extract(owned)
                # data is a list of (box, ndarray) pieces for grid items
                for box, values in payload.data or ():
                    digest.update(repr(box).encode())
                    digest.update(np.ascontiguousarray(values).tobytes())
    return digest.hexdigest()[:16]


def _drive(runtime: AllScaleRuntime, treetures: list[Any]) -> list[Any]:
    values = [runtime.wait(t) for t in treetures]
    runtime.check_ownership_invariants()
    return values


# -- scenario 1: migration under read ------------------------------------------------


def _migration_under_read() -> ScenarioInstance:
    runtime = _make_runtime(2)
    grid = Grid((4, 4), name="g")
    runtime.register_item(grid, placement=grid.decompose(2))
    results: list[Any] = []

    def write_body(ctx: Any) -> float:
        ctx.fragment(grid).scatter(
            Box.of((0, 0), (4, 4)), np.full((4, 4), 3.0)
        )
        return 3.0

    def read_body(ctx: Any) -> float:
        return float(ctx.fragment(grid).gather(Box.of((0, 0), (4, 4))).sum())

    writer = TaskSpec(
        name="whole-write",
        writes={grid: grid.box((0, 0), (4, 4))},
        flops=2e5,
        size_hint=16,
        body=write_body,
    )
    reader = TaskSpec(
        name="whole-read",
        reads={grid: grid.box((0, 0), (4, 4))},
        flops=1e5,
        size_hint=16,
        body=read_body,
    )

    def run() -> None:
        treetures = [
            runtime.submit(writer, origin=0),
            runtime.submit(reader, origin=1),
        ]
        results.extend(_drive(runtime, treetures))

    return ScenarioInstance(
        runtime.engine, run, lambda: _runtime_fingerprint(runtime, results)
    )


# -- scenario 2: balancer churn vs pinned reads --------------------------------------


def _balancer_vs_pin() -> ScenarioInstance:
    runtime = _make_runtime(3)
    grid = Grid((6, 2), name="g")
    # the contended rows start owned by node 1; churn bounces them 1 <-> 2
    placement = [
        grid.box((0, 0), (2, 2)),
        grid.box((2, 0), (6, 2)),
        grid.empty_region(),
    ]
    runtime.register_item(grid, placement=placement)
    contended = grid.box((2, 0), (6, 2))
    results: list[Any] = []

    def churn() -> Generator:
        # balancer-style ownership migrations: each round pulls the
        # contended rows to the other node, racing any in-flight replica
        # fetch exactly like LoadBalancer.rebalance_once slices do
        for round_no in range(6):
            target = 2 if round_no % 2 == 0 else 1
            manager = runtime.process(target).data_manager
            yield from manager._acquire_ownership(grid, contended)

    def read_body(ctx: Any) -> float:
        return float(ctx.fragment(grid).gather(Box.of((0, 0), (6, 2))).sum())

    reader = TaskSpec(
        name="pinned-read",
        reads={grid: grid.box((0, 0), (6, 2))},
        flops=1e5,
        size_hint=12,
        body=read_body,
    )

    def run() -> None:
        churn_future = runtime.spawn(churn())
        treeture = runtime.submit(reader, origin=0)
        results.extend(_drive(runtime, [treeture]))
        while not churn_future.done:
            if runtime.engine.run(max_events=100_000) == 0:
                raise RuntimeError("churn driver never completed")
        runtime.check_ownership_invariants()

    return ScenarioInstance(
        runtime.engine, run, lambda: _runtime_fingerprint(runtime, results)
    )


# -- scenario 3: overlapping write-intent chain --------------------------------------


def _write_intent_chain() -> ScenarioInstance:
    runtime = _make_runtime(2)
    grid = Grid((6, 2), name="g")
    runtime.register_item(grid, placement=grid.decompose(2))
    results: list[Any] = []

    def scatter_body(lo: int, hi: int, value: float) -> Callable[[Any], float]:
        def body(ctx: Any) -> float:
            ctx.fragment(grid).scatter(
                Box.of((lo, 0), (hi, 2)), np.full((hi - lo, 2), value)
            )
            return value

        return body

    def read_body(ctx: Any) -> float:
        return float(ctx.fragment(grid).gather(Box.of((2, 0), (6, 2))).sum())

    # w1 writes the bottom and *reads* the top (its read premise is what a
    # younger writer must respect); w2's write overlaps w1's read
    w1 = TaskSpec(
        name="w1",
        writes={grid: grid.box((0, 0), (3, 2))},
        reads={grid: grid.box((3, 0), (6, 2))},
        flops=2e5,
        size_hint=12,
        body=scatter_body(0, 3, 1.0),
    )
    w2 = TaskSpec(
        name="w2",
        writes={grid: grid.box((3, 0), (6, 2))},
        flops=2e5,
        size_hint=12,
        body=scatter_body(3, 6, 2.0),
    )
    r1 = TaskSpec(
        name="r1",
        reads={grid: grid.box((2, 0), (6, 2))},
        flops=1e5,
        size_hint=8,
        body=read_body,
    )

    def run() -> None:
        treetures = [
            runtime.submit(w1, origin=0),
            runtime.submit(w2, origin=1),
            runtime.submit(r1, origin=0),
        ]
        results.extend(_drive(runtime, treetures))

    return ScenarioInstance(
        runtime.engine, run, lambda: _runtime_fingerprint(runtime, results)
    )


# -- scenario 4: replica cache invalidation under coalescing -------------------------


def _replica_cache_invalidation() -> ScenarioInstance:
    runtime = _make_runtime(
        2,
        comm_coalescing=True,
        replica_prefetch=True,
        replica_cache_bytes=64.0,
    )
    grid = Grid((4, 2), name="g")
    runtime.register_item(grid, placement=grid.decompose(2))
    results: list[Any] = []

    def read_body(lo: int, hi: int) -> Callable[[Any], float]:
        def body(ctx: Any) -> float:
            return float(
                ctx.fragment(grid).gather(Box.of((lo, 0), (hi, 2))).sum()
            )

        return body

    def write_body(ctx: Any) -> float:
        ctx.fragment(grid).scatter(
            Box.of((2, 0), (4, 2)), np.full((2, 2), 7.0)
        )
        return 7.0

    r1 = TaskSpec(
        name="r1",
        reads={grid: grid.box((0, 0), (4, 2))},
        flops=1e5,
        size_hint=8,
        body=read_body(0, 4),
    )
    r2 = TaskSpec(
        name="r2",
        reads={grid: grid.box((1, 0), (4, 2))},
        flops=1e5,
        size_hint=6,
        body=read_body(1, 4),
    )
    w1 = TaskSpec(
        name="w1",
        writes={grid: grid.box((2, 0), (4, 2))},
        flops=2e5,
        size_hint=4,
        body=write_body,
    )

    def run() -> None:
        treetures = [
            runtime.submit(r1, origin=0),
            runtime.submit(r2, origin=1),
            runtime.submit(w1, origin=0),
        ]
        results.extend(_drive(runtime, treetures))

    return ScenarioInstance(
        runtime.engine, run, lambda: _runtime_fingerprint(runtime, results)
    )


# -- scenario 5: node failure during migration ---------------------------------------


def _node_failure_during_migration() -> ScenarioInstance:
    """A migration destination dies while the payload is on the wire.

    Ownership moved to the destination at export time; the crash drops it
    and the late payload must be *dead-lettered* — splicing it onto the
    corpse would leave bytes no process owns, invisible to the index.
    The choreography is event-driven (fail exactly when the in-flight
    marker appears), so the payload is mid-wire on every schedule; the
    fixed code recovers the lost regions from a checkpoint and a final
    read sees checkpoint-consistent values.
    """
    from repro.runtime.resilience import ResilienceManager

    runtime = _make_runtime(3)
    grid = Grid((6, 2), name="g")
    runtime.register_item(grid, placement=grid.decompose(3))
    resilience = ResilienceManager(runtime)
    results: list[Any] = []

    def seed(pid: int) -> TaskSpec:
        region = runtime.process(pid).data_manager.owned_region(grid)

        def body(ctx: Any) -> float:
            for box in region.boxes:
                ctx.fragment(grid).scatter(
                    box, np.full(box.widths(), float(pid + 1))
                )
            return float(pid + 1)

        return TaskSpec(
            name=f"seed{pid}",
            writes={grid: region},
            flops=1e5,
            size_hint=region.size(),
            body=body,
        )

    def read_body(ctx: Any) -> float:
        return float(ctx.fragment(grid).gather(Box.of((0, 0), (6, 2))).sum())

    reader = TaskSpec(
        name="survivor-read",
        reads={grid: grid.box((0, 0), (6, 2))},
        flops=1e5,
        size_hint=12,
        body=read_body,
    )

    def choreography() -> Generator:
        snapshot = yield from resilience.checkpoint()
        src, dst = 1, 2
        destination = runtime.process(dst).data_manager
        moving = runtime.process(src).data_manager.owned_region(grid)
        migration = runtime.spawn(
            destination._migrate_in(grid, moving, src)
        )
        # fail the destination the moment the payload is marked in
        # flight — after the atomic ownership handover, before landing
        while not destination._in_flight:
            yield 1e-7
        runtime.fail_process(dst)
        while not migration.done:
            yield 1e-7
        yield from resilience.recover_lost_data(snapshot)

    def run() -> None:
        seeds = [runtime.submit(seed(pid), origin=pid) for pid in range(3)]
        results.extend(_drive(runtime, seeds))
        fate = runtime.spawn(choreography())
        while not fate.done:
            if runtime.engine.run(max_events=100_000) == 0:
                raise RuntimeError("failure choreography never completed")
        results.extend(_drive(runtime, [runtime.submit(reader, origin=0)]))

    return ScenarioInstance(
        runtime.engine, run, lambda: _runtime_fingerprint(runtime, results)
    )


# -- scenario 6: service admission races ---------------------------------------------


def _service_admission() -> ScenarioInstance:
    from repro.service.core import ServiceConfig, ServiceCore
    from repro.service.jobs import JobSpec
    from repro.service.quotas import TenantConfig

    core = ServiceCore(
        ServiceConfig(
            nodes=2,
            cores_per_node=1,
            flops_per_core=1e9,
            tenants=(
                TenantConfig("alpha", weight=2.0),
                TenantConfig("beta", weight=1.0),
            ),
            max_running_jobs=2,
            events_per_slice=500,
        )
    )
    compute = {"flops": 2e6, "tasks": 2}
    records: list[Any] = []

    def run() -> None:
        records.extend(
            [
                core.submit(
                    JobSpec(tenant="alpha", kind="compute", params=compute)
                ),
                core.submit(
                    JobSpec(tenant="beta", kind="compute", params=compute)
                ),
                core.submit(
                    JobSpec(tenant="alpha", kind="compute", params=compute)
                ),
            ]
        )
        core.run_until_drained()
        core.check_invariants()

    def fingerprint() -> str:
        digest = hashlib.sha256()
        for record in records:
            digest.update(f"{record.job_id}:{record.state}".encode())
        for name in sorted(core.ledgers):
            ledger = core.ledgers[name]
            digest.update(f"|{name}:{ledger.used:.9f}".encode())
        return digest.hexdigest()[:16]

    return ScenarioInstance(core.engine, run, fingerprint)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "migration_under_read",
            "a whole-grid writer consolidating ownership races a "
            "whole-grid reader's replica fetches (2 nodes)",
            _migration_under_read,
        ),
        Scenario(
            "balancer_vs_pin",
            "balancer-style ownership churn bounces contended rows "
            "between two nodes while a third reads them (3 nodes)",
            _balancer_vs_pin,
        ),
        Scenario(
            "write_intent_chain",
            "two writers with overlapping write/read premises plus a "
            "reader exercise the write-intent total order (2 nodes)",
            _write_intent_chain,
        ),
        Scenario(
            "replica_cache_invalidation",
            "coalesced + prefetched replica fetches against a tiny "
            "replica cache and an invalidating writer (2 nodes)",
            _replica_cache_invalidation,
        ),
        Scenario(
            "node_failure_during_migration",
            "the destination of an ownership migration crashes while "
            "the payload is on the wire; the late payload must be "
            "dead-lettered and the loss recovered from a checkpoint "
            "(3 nodes)",
            _node_failure_during_migration,
        ),
        Scenario(
            "service_admission",
            "three tenant jobs contend for two run slots on the shared "
            "service cluster; ledgers must balance (2 nodes)",
            _service_admission,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
