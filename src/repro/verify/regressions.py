"""Mechanical fix-reverts and the bug-rediscovery harness.

The headline proof obligation of the model checker: with a historical
protocol fix surgically reverted, bounded exploration must *rediscover*
the bug — find a schedule that fails — and shrink it to a minimal,
replayable decision trace.  Two reverts are provided, matching the two
schedule-dependent protocol bugs fixed in this repo's history:

* **write-intent reservations** — originally there were none: staging is
  lock-free, so a writer repeatedly invalidating the replicas a reader
  keeps re-fetching (or two writers stealing each other's staged
  ownership) could ping-pong until a staging loop gave up ("requirement
  thrashing" / "ownership thrashing").  The fix broke the symmetry with
  a total order over intents; the revert makes ``write_intent_blocked``
  answer ``False`` unconditionally, restoring the free-for-all.
* **read escalation** — originally, a replica fetch that lost every
  attempt against concurrent ownership migration raised instead of
  escalating to an (atomic) ownership pull, so balancer-style churn
  could starve a pinned reader outright.

Both reverts monkeypatch the *fixed* code object for the duration of a
``with`` block; nothing but the historical behaviour changes, so any
failure the explorer finds under the revert is the historical bug.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Generator, Iterator

from repro.analysis.findings import Finding
from repro.verify import monitor as _verify
from repro.verify.explorer import (
    DEFAULT_BUDGET,
    ExploreResult,
    RunResult,
    explore,
    minimize_failure,
    run_schedule,
)
from repro.verify.oracle import DecisionTrace
from repro.verify.scenarios import get_scenario


@contextmanager
def revert_write_intents() -> Iterator[None]:
    """Revert the write-intent reservation fix (intents never block)."""
    from repro.runtime.runtime import AllScaleRuntime

    original = AllScaleRuntime.write_intent_blocked

    def reverted(
        self, item, region, owner, against_reads: bool = False
    ) -> bool:
        monitor = _verify.current
        if monitor is not None:
            # keep the sync edge so the happens-before relation stays
            # sound while the guard itself is disabled
            monitor.sync_acquire(("intent", item.name))
        return False

    AllScaleRuntime.write_intent_blocked = reverted  # type: ignore[method-assign]
    try:
        yield
    finally:
        AllScaleRuntime.write_intent_blocked = original  # type: ignore[method-assign]


@contextmanager
def revert_read_escalation() -> Iterator[None]:
    """Revert the starved-fetch-to-migration escalation."""
    from repro.runtime.data_manager import DataItemManager

    original = DataItemManager._escalate_fetch

    def reverted(self, item, missing, task=None, plan=None) -> Generator:
        raise RuntimeError(
            f"process {self.pid} could not replicate "
            f"{missing.size()} read elements of {item.name!r} after "
            "repeated attempts (replica starvation?)"
        )
        yield  # pragma: no cover - keeps the replacement a generator

    DataItemManager._escalate_fetch = reverted  # type: ignore[method-assign]
    try:
        yield
    finally:
        DataItemManager._escalate_fetch = original  # type: ignore[method-assign]


@contextmanager
def revert_migration_dead_letter() -> Iterator[None]:
    """Revert the dead-lettering of payloads addressed to failed nodes.

    Originally ``_land_migration`` spliced every arrived payload
    unconditionally; a payload whose destination died mid-wire then
    resurrected bytes on the corpse — a fragment no process owns,
    invisible to the index — which the sentinel's coherence scan flags
    as a registry/fragment disagreement.
    """
    from repro.runtime.data_manager import DataItemManager

    original = DataItemManager._land_migration

    def reverted(self, item, payload) -> Generator:
        yield self.process.node.execute(
            self.process.runtime.config.fragment_op_overhead
        )
        self._store_payload(item, payload)

    DataItemManager._land_migration = reverted  # type: ignore[method-assign]
    try:
        yield
    finally:
        DataItemManager._land_migration = original  # type: ignore[method-assign]


@dataclass(frozen=True)
class KnownBug:
    """One historical bug: a revert, a scenario that can expose it, and
    the signatures distinguishing it from unrelated findings.

    A bug manifests either as an uncaught error (a protocol guard giving
    up) or as a race-sanitizer finding (the unordered accesses the missing
    protection was ordering); either counts as rediscovery.
    """

    name: str
    scenario: str
    revert: Callable[[], Iterator[None]]
    #: error substrings, any of which identifies the bug's failure mode
    error_signatures: tuple[str, ...] = ()
    #: race-message substrings, all of which must appear in one finding
    race_signatures: tuple[str, ...] = ()

    def matches_error(self, error: str | None) -> bool:
        return error is not None and any(
            signature in error for signature in self.error_signatures
        )

    def matches_race(self, finding: "Finding") -> bool:
        return bool(self.race_signatures) and all(
            signature in finding.message
            for signature in self.race_signatures
        )

    def hits(self, run: RunResult) -> bool:
        """Does one re-executed run still exhibit this bug?"""
        if self.matches_error(run.error):
            return True
        return any(self.matches_race(finding) for finding in run.races)


KNOWN_BUGS: dict[str, KnownBug] = {
    bug.name: bug
    for bug in (
        KnownBug(
            name="write_intent_livelock",
            scenario="write_intent_chain",
            revert=revert_write_intents,
            error_signatures=(
                "requirement thrashing?",
                "ownership thrashing?",
            ),
            # without intent reservations the writer's task write is
            # unordered against the competing accesses it was supposed
            # to defer to — the sanitizer sees the livelock's root
            # cause even on schedules where no guard trips
            race_signatures=("task:w1",),
        ),
        KnownBug(
            name="ownership_thrashing",
            scenario="balancer_vs_pin",
            revert=revert_read_escalation,
            error_signatures=("replica starvation?",),
        ),
        KnownBug(
            name="migration_corpse_splice",
            scenario="node_failure_during_migration",
            revert=revert_migration_dead_letter,
            error_signatures=(
                "disagrees with its fragment",
                "owns data it neither holds nor awaits",
            ),
        ),
    )
}


@dataclass
class Rediscovery:
    """Outcome of hunting one known bug under its revert."""

    bug: str
    scenario: str
    found: bool
    explored: ExploreResult
    #: "failure" or "race", when found
    kind: str | None = None
    evidence: str | None = None
    trace: DecisionTrace | None = None


def rediscover(
    name: str, budget: int = DEFAULT_BUDGET, minimize: bool = True
) -> Rediscovery:
    """Revert ``name``'s fix, explore its scenario, minimize the repro.

    The returned trace replays the bug deterministically while the revert
    is active; against the fixed code it replays (tolerantly) to a clean
    run — which is exactly what the pinned regression tests assert.
    """
    bug = KNOWN_BUGS[name]
    scenario = get_scenario(bug.scenario)
    with bug.revert():
        explored = explore(scenario, budget=budget)
        kind, evidence, decisions = None, None, None
        for error, failing_decisions in explored.failures:
            if bug.matches_error(error):
                kind, evidence, decisions = "failure", error, failing_decisions
                break
        if kind is None:
            for finding, racy_decisions in explored.race_traces:
                if bug.matches_race(finding):
                    kind, evidence = "race", finding.message
                    decisions = racy_decisions
                    break
        if kind is None or decisions is None:
            return Rediscovery(
                bug=name,
                scenario=bug.scenario,
                found=False,
                explored=explored,
            )
        trace = DecisionTrace(
            scenario=bug.scenario, decisions=list(decisions), note=evidence
        )
        if minimize:
            trace = minimize_failure(scenario, decisions, bug.hits)
            trace.note = evidence
    return Rediscovery(
        bug=name,
        scenario=bug.scenario,
        found=True,
        explored=explored,
        kind=kind,
        evidence=evidence,
        trace=trace,
    )


def replay_trace(trace: DecisionTrace, strict: bool = False) -> RunResult:
    """Replay a pinned trace against the current code."""
    scenario = get_scenario(trace.scenario)
    run, _ = run_schedule(scenario, trace.forced(), strict=strict)
    return run
