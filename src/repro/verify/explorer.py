"""Stateless DPOR exploration with sleep sets over scenario schedules.

One *branch* = one fresh scenario instance driven to completion under a
:class:`~repro.verify.oracle.RecordingOracle` whose forced prefix replays
the decisions up to a divergence point and takes one alternative there.
After each run the recorded choice points are mined for new branches:

* an alternative candidate ``c`` at choice point ``i`` forks a branch only
  if ``c``'s dependence footprint conflicts with some event executed
  between ``i`` and ``c``'s own execution in the observed run — commuting
  reorderings provably reach the same state and are pruned (dynamic
  partial-order reduction);
* *sleep sets* carry the already-explored choices of earlier siblings into
  each child (filtered to those independent of the child's own decision)
  and wake them when a dependent event executes, eliminating the remaining
  duplicate interleavings.

Everything is deterministic: candidate sets are sorted, branches explore
depth-first in reverse-candidate order, and event sequence numbers are
reproducible under a fixed forced prefix — which is also why a recorded
decision list *is* a replayable repro.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.findings import Finding
from repro.verify import monitor as monitor_mod
from repro.verify.monitor import FootprintOp, VerifyMonitor, ops_conflict
from repro.verify.oracle import (
    ChoicePoint,
    DecisionTrace,
    RecordingOracle,
    ScheduleDivergence,
)
from repro.verify.scenarios import Scenario

#: default bound on explored branches per scenario
DEFAULT_BUDGET = 64


@dataclass
class RunResult:
    """Outcome of driving one scenario instance along one schedule."""

    status: str  # "ok" | "fail" | "divergent"
    error: str | None
    fingerprint: str | None
    races: list[Finding]
    events: int
    points: list[ChoicePoint]
    decisions: list[tuple[int, int]]


@dataclass
class ExploreResult:
    """Aggregate of one bounded exploration."""

    scenario: str
    branches: int = 0
    exhausted: bool = True
    choice_points: int = 0
    events: int = 0
    #: distinct terminal-state fingerprints of clean branches, sorted
    fingerprints: list[str] = field(default_factory=list)
    #: deduplicated race-sanitizer findings across all branches
    races: list[Finding] = field(default_factory=list)
    #: for each first-seen race, the decision list of the branch exposing it
    race_traces: list[tuple[Finding, list[tuple[int, int]]]] = field(
        default_factory=list
    )
    #: (error message, full decision list) of every failing branch
    failures: list[tuple[str, list[tuple[int, int]]]] = field(
        default_factory=list
    )

    @property
    def clean(self) -> bool:
        return not self.failures and not self.races

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "branches": self.branches,
            "exhausted": self.exhausted,
            "choice_points": self.choice_points,
            "events": self.events,
            "fingerprints": list(self.fingerprints),
            "races": [str(f) for f in self.races],
            "failures": [
                {"error": error, "decisions": list(decisions)}
                for error, decisions in self.failures
            ],
            "clean": self.clean,
        }


def run_schedule(
    scenario: Scenario, forced: dict[int, int], strict: bool = True
) -> tuple[RunResult, VerifyMonitor]:
    """Drive one fresh instance along the schedule ``forced`` prescribes."""
    instance = scenario.build()
    engine = instance.engine
    monitor = VerifyMonitor()
    oracle: RecordingOracle
    if strict:
        oracle = RecordingOracle(forced)
    else:
        from repro.verify.oracle import ReplayOracle

        oracle = ReplayOracle(forced)
    oracle.position = lambda: len(monitor.exec_order)
    engine.set_hb(monitor)
    engine.set_oracle(oracle)
    monitor_mod.install(monitor)
    status, error, fingerprint = "ok", None, None
    try:
        instance.run()
        fingerprint = instance.fingerprint()
    except ScheduleDivergence as exc:
        status, error = "divergent", str(exc)
    except Exception as exc:
        status, error = "fail", f"{type(exc).__name__}: {exc}"
    finally:
        monitor_mod.install(None)
        engine.set_oracle(None)
        engine.set_hb(None)
    return (
        RunResult(
            status=status,
            error=error,
            fingerprint=fingerprint,
            races=list(monitor.races),
            events=len(monitor.exec_order),
            points=list(oracle.points),
            decisions=oracle.decisions(),
        ),
        monitor,
    )


def _effective_footprints(
    monitor: VerifyMonitor,
) -> dict[int, list[FootprintOp]]:
    """Fold each event's descendants' footprints into its own.

    Advancing an event also advances everything it transitively schedules,
    so for *pending* candidates (whose own handler is often just a shell
    resuming a coroutine) the dependence that matters is the union over
    the subtree it unleashes in the observed run.
    """
    children: dict[int, list[int]] = {}
    for child, parent in monitor.parents.items():
        children.setdefault(parent, []).append(child)
    eff: dict[int, list[FootprintOp]] = {}
    for seq in reversed(monitor.exec_order):
        # children always carry larger seqs and execute via later schedule
        # calls; a reverse exec-order pass resolves leaves first
        ops = list(monitor.footprints.get(seq, []))
        for child in children.get(seq, ()):
            ops.extend(eff.get(child, monitor.footprints.get(child, [])))
        eff[seq] = ops
    return eff


def _branch_worthy(
    candidate: int,
    point: ChoicePoint,
    monitor: VerifyMonitor,
    eff: dict[int, list[FootprintOp]],
) -> bool:
    """Would dispatching ``candidate`` at ``point`` not commute with the
    observed run?  (If it commutes, the reordering reaches the same state.)"""
    target = monitor.exec_index.get(candidate)
    if target is None:
        return False  # never executed (cancelled): nothing to reorder
    footprint = eff.get(candidate, [])
    order = monitor.exec_order
    footprints = monitor.footprints
    for pos in range(point.pos, target):
        other = order[pos]
        if other == candidate:
            continue
        if ops_conflict(footprint, footprints.get(other, [])):
            return True
    return False


def _conflicts(
    a: int, b: int, monitor: VerifyMonitor, eff: dict[int, list[FootprintOp]]
) -> bool:
    return ops_conflict(eff.get(a, []), eff.get(b, []))


def explore(
    scenario: Scenario,
    budget: int = DEFAULT_BUDGET,
    on_progress: Callable[[int], None] | None = None,
) -> ExploreResult:
    """Bounded DPOR exploration of one scenario's schedule space."""
    result = ExploreResult(scenario=scenario.name)
    fingerprints: set[str] = set()
    race_keys: set[tuple] = set()
    seen_prefixes: set[tuple[tuple[int, int], ...]] = set()
    # stack entries: (forced decisions, sleep set at the divergence point,
    # exec position of the divergence point)
    stack: list[tuple[tuple[tuple[int, int], ...], frozenset[int], int]] = [
        ((), frozenset(), 0)
    ]
    while stack and result.branches < budget:
        forced, sleep0, sleep_pos = stack.pop()
        run, monitor = run_schedule(scenario, dict(forced))
        result.branches += 1
        result.choice_points += len(run.points)
        result.events += run.events
        if on_progress is not None:
            on_progress(result.branches)
        if run.status == "divergent":
            continue  # stale branch: the prefix no longer reproduces
        if run.status == "fail":
            result.failures.append((run.error or "", run.decisions))
        elif run.fingerprint is not None:
            if run.fingerprint not in fingerprints:
                fingerprints.add(run.fingerprint)
        for finding in run.races:
            if finding.key() not in race_keys:
                race_keys.add(finding.key())
                result.races.append(finding)
                result.race_traces.append((finding, run.decisions))
        # mine the unforced suffix for new branches, evolving the sleep set
        depth = len(forced)
        sleep = set(sleep0)
        pos = sleep_pos
        order = monitor.exec_order
        eff = _effective_footprints(monitor)
        for point in run.points:
            if point.step < depth:
                continue
            # wake sleepers a dependent event executed past (the executed
            # event's own footprint suffices: its descendants take their
            # own turn in this walk)
            while pos < point.pos:
                executed = order[pos]
                pos += 1
                if executed in sleep:
                    sleep.discard(executed)
                    continue
                executed_ops = monitor.footprints.get(executed, [])
                sleep = {
                    s
                    for s in sleep
                    if not ops_conflict(eff.get(s, []), executed_ops)
                }
            explored: list[int] = [point.chosen]
            for candidate in point.candidates:
                if (
                    candidate == point.chosen
                    or candidate in sleep
                    or not _branch_worthy(candidate, point, monitor, eff)
                ):
                    continue
                child_forced = tuple(
                    [
                        (p.step, p.chosen)
                        for p in run.points
                        if p.step < point.step
                    ]
                    + [(point.step, candidate)]
                )
                if child_forced in seen_prefixes:
                    explored.append(candidate)
                    continue
                seen_prefixes.add(child_forced)
                child_sleep = frozenset(
                    s
                    for s in set(sleep) | set(explored)
                    if not _conflicts(s, candidate, monitor, eff)
                )
                stack.append((child_forced, child_sleep, point.pos))
                explored.append(candidate)
    result.exhausted = not stack
    result.fingerprints = sorted(fingerprints)
    return result


# -- failing-trace minimization ------------------------------------------------------


def minimize_failure(
    scenario: Scenario,
    decisions: list[tuple[int, int]],
    is_failure: Callable[[RunResult], bool],
) -> DecisionTrace:
    """Shrink a failing decision list to a minimal deterministic repro.

    ``is_failure`` decides, from a full :class:`RunResult`, whether a run
    still exhibits the defect — an uncaught error, or a specific race
    finding.  Three passes: binary-search the shortest failing prefix
    (the unforced tail falls back to default tie-breaks), then drop the
    decisions that merely restate the default choice, then try eliding
    each remaining decision outright (schedule divergence counts as
    not-failing).
    """

    def fails(forced: list[tuple[int, int]]) -> tuple[bool, RunResult]:
        run, _ = run_schedule(scenario, dict(forced))
        return is_failure(run), run

    # 1. shortest failing prefix, by bisection
    lo, hi = 0, len(decisions)
    while lo < hi:
        mid = (lo + hi) // 2
        failed, _ = fails(decisions[:mid])
        if failed:
            hi = mid
        else:
            lo = mid + 1
    prefix = decisions[:lo]
    # bisection assumes failure is monotone in prefix length; verify, and
    # fall back to the full decision list if the assumption broke
    failed, run = fails(prefix)
    if not failed:
        prefix = list(decisions)
        failed, run = fails(prefix)
        if not failed:
            raise RuntimeError(
                "failing decision list no longer reproduces the failure"
            )
    # 2. drop default-restating decisions: keep only the choices that
    # differ from the default tie-break at their step
    defaults = {p.step: p.candidates[0] for p in run.points}
    trimmed = [
        (step, seq) for step, seq in prefix if defaults.get(step) != seq
    ]
    failed, _ = fails(trimmed)
    if failed:
        prefix = trimmed
    # 3. greedy single-decision elision to a fixed point
    changed = True
    while changed:
        changed = False
        for index in range(len(prefix) - 1, -1, -1):
            attempt = prefix[:index] + prefix[index + 1 :]
            failed, _ = fails(attempt)
            if failed:
                prefix = attempt
                changed = True
    return DecisionTrace(scenario=scenario.name, decisions=list(prefix))
