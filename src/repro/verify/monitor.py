"""Happens-before monitor: vector clocks, race sanitizer, DPOR footprints.

One :class:`VerifyMonitor` observes one simulation run.  It plugs into the
engine through :meth:`~repro.sim.engine.SimEngine.set_hb` (event
attribution, coroutine lifecycle, future causality) and into the runtime
protocol layer through the module-global :data:`current` hook, which the
instrumented call sites in ``repro.runtime.*`` consult with one ``is not
None`` check.

**Thread model.**  Logical threads are the spawned generator coroutines
(tasks, staging passes, balancer rounds, fetchers) plus thread 0 for the
driver.  A plain scheduled callback executes on the thread that scheduled
it — an *actor-style* modeling choice: callbacks of one thread are
artificially totally ordered with that thread's later actions, which can
only hide races (never invent them).  Since callbacks in this codebase are
almost exclusively future completions whose interesting effects happen in
the resumed coroutine (a proper thread), the approximation is tight in
practice.

**Sync edges.**  Protocol guards synchronize through flags rather than
locks (write intents, the replica registry, in-flight / fetching markers,
lock-table queries, index covers).  Each publishing site calls
:meth:`VerifyMonitor.sync_release` and each observing guard calls
:meth:`VerifyMonitor.sync_acquire` on a shared key, creating the
release→acquire edge vector-clock race detection needs.  Both calls also
record a dependence footprint op, which is what the DPOR layer uses as its
independence relation: two events are independent unless their footprints
share a key with at least one writer (and, for region-tagged ops,
overlapping regions).

This module must not import anything from ``repro.runtime`` (the runtime
imports it at module load).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.items.base import DataItem
    from repro.regions.base import Region
    from repro.sim.engine import Future

#: the active monitor, consulted by instrumented runtime call sites;
#: ``None`` (the overwhelmingly common case) costs one attribute read
current: "VerifyMonitor | None" = None


def install(monitor: "VerifyMonitor | None") -> None:
    """Set (or with ``None`` clear) the process-global monitor hook."""
    global current
    current = monitor


VectorClock = dict[int, int]

#: one dependence-footprint operation: (key, is_write, region-or-None)
FootprintOp = tuple[tuple, bool, "Region | None"]


def _merge(dst: VectorClock, src: VectorClock) -> None:
    for tid, k in src.items():
        if dst.get(tid, 0) < k:
            dst[tid] = k


def ops_conflict(a: list[FootprintOp], b: list[FootprintOp]) -> bool:
    """Do two events' footprints contain a dependent (non-commuting) pair?"""
    for key_a, write_a, region_a in a:
        for key_b, write_b, region_b in b:
            if key_a != key_b or not (write_a or write_b):
                continue
            if (
                region_a is None
                or region_b is None
                or region_a.overlaps(region_b)
            ):
                return True
    return False


class _Access:
    """One recorded fragment access in the race-detection shadow."""

    __slots__ = ("region", "write", "tid", "epoch", "note", "pid", "logical")

    def __init__(
        self,
        region: "Region",
        write: bool,
        tid: int,
        epoch: int,
        note: str,
        pid: int,
        logical: bool,
    ) -> None:
        self.region = region
        self.write = write
        self.tid = tid
        self.epoch = epoch
        self.note = note
        self.pid = pid
        self.logical = logical


class VerifyMonitor:
    """Vector-clock happens-before state for one controlled run."""

    def __init__(self) -> None:
        # -- thread / clock state ------------------------------------------------
        self._next_tid = 1
        self.clocks: dict[int, VectorClock] = {0: {0: 1}}
        #: context stack of thread ids; [0] outside any coroutine
        self._stack: list[int] = [0]
        #: id(gen) -> thread id for live coroutines
        self._gen_threads: dict[int, int] = {}
        #: pending event seq -> thread that scheduled it
        self._event_thread: dict[int, int] = {}
        #: id(future) -> (clock snapshot at completion, future ref — the
        #: strong ref pins the id against reuse)
        self._future_clocks: dict[int, tuple[VectorClock, Any]] = {}
        #: id(future) -> causality accumulated before completion (all_of)
        self._future_pending: dict[int, VectorClock] = {}
        #: sync key -> published clock (release side)
        self._sync: dict[tuple, VectorClock] = {}
        # -- execution record (DPOR input) ---------------------------------------
        #: executed event seqs, in order
        self.exec_order: list[int] = []
        #: seq -> position in :attr:`exec_order`
        self.exec_index: dict[int, int] = {}
        #: seq -> dependence footprint of that event
        self.footprints: dict[int, list[FootprintOp]] = {}
        #: seq -> seq of the event during which it was scheduled; the DPOR
        #: layer folds descendants' footprints into their ancestors so a
        #: "shell" event (one that merely resumes a coroutine) carries the
        #: dependence of the work it unleashes
        self.parents: dict[int, int] = {}
        self._cur_seq: int | None = None
        self._cur_ops: list[FootprintOp] | None = None
        self._cur_seen: set[tuple] | None = None
        # -- race sanitizer ------------------------------------------------------
        #: item name -> recorded accesses
        self._shadow: dict[str, list[_Access]] = {}
        self.races: list[Finding] = []
        self._race_keys: set[tuple] = set()

    # -- engine-side happens-before hooks (SimEngine.set_hb) ---------------------

    def on_scheduled(self, seq: int) -> None:
        self._event_thread[seq] = self._stack[-1]
        if self._cur_seq is not None:
            self.parents[seq] = self._cur_seq

    def on_event(self, seq: int) -> None:
        tid = self._event_thread.pop(seq, 0)
        clock = self.clocks.get(tid)
        if clock is None:
            clock = self.clocks[tid] = {}
        clock[tid] = clock.get(tid, 0) + 1
        self._stack = [tid]
        self._cur_seq = seq
        self.exec_index[seq] = len(self.exec_order)
        self.exec_order.append(seq)
        ops: list[FootprintOp] = []
        self.footprints[seq] = ops
        self._cur_ops = ops
        self._cur_seen = set()

    def on_spawn(self, gid: int) -> None:
        tid = self._next_tid
        self._next_tid = tid + 1
        self.clocks[tid] = dict(self.clocks[self._stack[-1]])
        self._gen_threads[gid] = tid

    def on_resume(self, gid: int) -> None:
        tid = self._gen_threads.get(gid)
        if tid is None:
            tid = self._next_tid
            self._next_tid = tid + 1
            self.clocks[tid] = {}
            self._gen_threads[gid] = tid
        clock = self.clocks[tid]
        _merge(clock, self.clocks[self._stack[-1]])
        clock[tid] = clock.get(tid, 0) + 1
        self._stack.append(tid)

    def on_suspend(self, gid: int, finished: bool = False) -> None:
        tid = self._stack.pop()
        # the resumer continues inline after the yield: genuine program order
        _merge(self.clocks[self._stack[-1]], self.clocks[tid])
        if finished:
            self._gen_threads.pop(gid, None)

    def on_future_complete(self, future: "Future") -> None:
        pending = self._future_pending.pop(id(future), None)
        ctx = self.clocks[self._stack[-1]]
        if pending is not None:
            # an all_of join depends on *every* input's completer
            _merge(ctx, pending)
        self._future_clocks[id(future)] = (dict(ctx), future)

    def on_future_read(self, future: "Future") -> None:
        entry = self._future_clocks.get(id(future))
        if entry is not None and entry[1] is future:
            _merge(self.clocks[self._stack[-1]], entry[0])

    def note_future_dep(self, future: "Future") -> None:
        pending = self._future_pending.setdefault(id(future), {})
        _merge(pending, self.clocks[self._stack[-1]])

    # -- runtime-side instrumentation API ----------------------------------------

    def op(
        self, key: tuple, write: bool, region: "Region | None" = None
    ) -> None:
        """Record one dependence-footprint op for the executing event."""
        ops = self._cur_ops
        if ops is None:
            return  # setup phase, outside any event
        dedup = (key, write, id(region))
        seen = self._cur_seen
        if seen is not None:
            if dedup in seen:
                return
            seen.add(dedup)
        ops.append((key, write, region))

    def sync_release(
        self, key: tuple, region: "Region | None" = None
    ) -> None:
        """Publish the current context's clock on ``key`` (a write op)."""
        self.op(key, True, region)
        published = self._sync.get(key)
        if published is None:
            published = self._sync[key] = {}
        _merge(published, self.clocks[self._stack[-1]])

    def sync_acquire(
        self, key: tuple, region: "Region | None" = None
    ) -> None:
        """Observe state published on ``key`` (a read op + clock join)."""
        self.op(key, False, region)
        published = self._sync.get(key)
        if published is not None:
            _merge(self.clocks[self._stack[-1]], published)

    def frag_read(
        self, pid: int, item: "DataItem", region: "Region", note: str
    ) -> None:
        self._access(pid, item, region, False, note)

    def frag_write(
        self, pid: int, item: "DataItem", region: "Region", note: str
    ) -> None:
        self._access(pid, item, region, True, note)

    # -- race detection -----------------------------------------------------------

    def _access(
        self,
        pid: int,
        item: "DataItem",
        region: "Region",
        write: bool,
        note: str,
    ) -> None:
        if region.is_empty():
            return
        self.op(("frag", item.name), write, region)
        # *logical* writes change the item's value (task bodies, zero-init
        # first touch); copy-maintenance writes (replica/migration splices,
        # invalidations) only move existing values between address spaces.
        # A racing pair is reported only when a logical writer is involved:
        # copies racing reads or each other cannot corrupt the model state,
        # and the per-element shadow is shared across all processes' copies.
        logical = write and (note.startswith("task:") or note == "allocate")
        tid = self._stack[-1]
        clock = self.clocks[tid]
        records = self._shadow.setdefault(item.name, [])
        for record in records:
            if record.tid == tid:
                continue
            if not ((write and logical) or (record.write and record.logical)):
                continue
            if clock.get(record.tid, 0) >= record.epoch:
                continue  # ordered: record happens-before this access
            if region.overlaps(record.region):
                self._report_race(item, region, record, write, note, pid)
        epoch = clock.get(tid, 0)
        fresh = _Access(region, write, tid, epoch, note, pid, logical)
        # same-thread records covered by the new access are superseded for
        # every future ordering check; prune them to bound the shadow
        records[:] = [
            r
            for r in records
            if not (r.tid == tid and r.write == write and region.covers(r.region))
        ]
        records.append(fresh)

    def _report_race(
        self,
        item: "DataItem",
        region: "Region",
        record: _Access,
        write: bool,
        note: str,
        pid: int,
    ) -> None:
        kind = "write-write" if (write and record.write) else "read-write"
        first, second = sorted([record.note, note])
        key = (kind, item.name, first, second)
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        overlap = region.intersect(record.region)
        self.races.append(
            Finding(
                check=f"race.{kind}",
                severity="error",
                message=(
                    f"unordered {kind} pair on {item.name!r}: "
                    f"{record.note} (pid {record.pid}) vs {note} (pid {pid}) "
                    f"overlap {overlap.size()} elements"
                ),
                item=item.name,
                region=str(overlap),
            )
        )
