"""Command-line front end for the schedule-space model checker.

Usage::

    python -m repro.verify SCENARIO [SCENARIO ...] [--budget N] [--json]
    python -m repro.verify --list
    python -m repro.verify --smoke [--budget N] [--json]

Exploring a scenario drives fresh instances of it through bounded DPOR
over the schedule space and reports branches, distinct terminal
fingerprints, race findings, and failing schedules (with their decision
traces).  ``--smoke`` is the CI entry point: every scenario is explored
twice (the two passes must agree exactly — branch counts and fingerprint
sets — or the checker itself is nondeterministic and its traces would be
worthless), and both historical protocol bugs must be rediscovered under
their mechanical fix-reverts with minimal traces that replay clean
against the fixed code.

Exit codes: 0 — everything clean; 1 — violations found (failing
schedules, races, nondeterminism, or a missed rediscovery); 2 — the
checker itself crashed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.verify.explorer import DEFAULT_BUDGET, ExploreResult, explore
from repro.verify.regressions import KNOWN_BUGS, rediscover, replay_trace
from repro.verify.scenarios import SCENARIOS, get_scenario


def _explore_scenarios(
    names: list[str], budget: int, as_json: bool
) -> tuple[int, list[dict[str, Any]]]:
    status = 0
    reports: list[dict[str, Any]] = []
    for name in names:
        result = explore(get_scenario(name), budget=budget)
        reports.append(result.to_dict())
        if not result.clean:
            status = 1
        if not as_json:
            _print_explore(result)
    return status, reports


def _print_explore(result: ExploreResult) -> None:
    shape = "exhausted" if result.exhausted else "budget-capped"
    print(
        f"{result.scenario}: {result.branches} branches ({shape}), "
        f"{result.choice_points} choice points, {result.events} events, "
        f"{len(result.fingerprints)} distinct terminal states"
    )
    for finding in result.races:
        print(f"  RACE  {finding.message}")
    for error, decisions in result.failures:
        print(f"  FAIL  {error}")
        print(f"        trace: {decisions}")
    if result.clean:
        print("  clean: no failing schedules, no races")


def _smoke(budget: int, as_json: bool) -> tuple[int, dict[str, Any]]:
    status = 0
    report: dict[str, Any] = {"scenarios": [], "rediscoveries": []}
    for name in SCENARIOS:
        scenario = get_scenario(name)
        first = explore(scenario, budget=budget)
        second = explore(scenario, budget=budget)
        deterministic = (
            first.branches == second.branches
            and first.choice_points == second.choice_points
            and first.events == second.events
            and first.fingerprints == second.fingerprints
        )
        entry = first.to_dict()
        entry["deterministic"] = deterministic
        report["scenarios"].append(entry)
        if not first.clean or not deterministic:
            status = 1
        if not as_json:
            _print_explore(first)
            if not deterministic:
                print("  NONDETERMINISTIC: two passes disagree")
    for name in KNOWN_BUGS:
        found = rediscover(name, budget=budget)
        entry = {
            "bug": name,
            "scenario": found.scenario,
            "found": found.found,
            "kind": found.kind,
            "evidence": found.evidence,
            "trace": found.trace.decisions if found.trace else None,
        }
        replay_clean = None
        if found.found and found.trace is not None:
            replay = replay_trace(found.trace)
            replay_clean = replay.status == "ok" and not replay.races
            entry["replays_clean_on_fixed_code"] = replay_clean
        report["rediscoveries"].append(entry)
        if not found.found or replay_clean is False:
            status = 1
        if not as_json:
            if found.found:
                print(
                    f"rediscovered {name} ({found.kind}) in "
                    f"{found.explored.branches} branches; minimal trace "
                    f"{found.trace.decisions if found.trace else None}; "
                    f"replays clean on fixed code: {replay_clean}"
                )
            else:
                print(
                    f"MISSED {name}: not rediscovered within "
                    f"{budget} branches"
                )
    return status, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="bounded schedule-space model checker",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="scenario names to explore (see --list)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=DEFAULT_BUDGET,
        help=f"max branches per exploration (default {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--list", action="store_true", help="list known scenarios and exit"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="explore every scenario twice (determinism check) and "
        "rediscover both historical bugs under their fix-reverts",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, scenario in SCENARIOS.items():
            print(f"{name}: {scenario.description}")
        return 0
    if args.smoke:
        status, report = _smoke(args.budget, args.json)
        if args.json:
            print(json.dumps(report, indent=2))
        return status
    if not args.scenarios:
        parser.error("no scenarios given (try --list or --smoke)")
    for name in args.scenarios:
        get_scenario(name)  # fail fast on typos, before any exploration
    status, reports = _explore_scenarios(
        args.scenarios, args.budget, args.json
    )
    if args.json:
        print(json.dumps(reports, indent=2))
    return status


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        raise
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"verify: internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        sys.exit(2)
