"""Schedule oracles: recorded, forced, and replayed tie-break decisions.

The engine's controlled dispatch loop calls ``oracle.choose(time,
candidates, labels)`` whenever more than one event is live; candidates
arrive in natural ``(time, seq)`` order, so ``candidates[0]`` is the
schedule an uncontrolled run would take, and choosing any other candidate
defers the earlier events past it.  :class:`RecordingOracle` answers from a
(possibly empty) forced prefix — decisions indexed by choose-call ordinal
— and records every choice point, so one run yields both the schedule
taken and the raw material for DPOR branching.

A recorded run's full decision list *is* its deterministic repro: feeding
it back as the forced prefix replays the identical schedule, because event
sequence numbers are themselves deterministic under a fixed prefix.
:class:`ReplayOracle` is the tolerant variant used by regression tests
that replay a pinned trace against *changed* (fixed) code, where later
choice points may no longer line up exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


class ScheduleDivergence(RuntimeError):
    """A forced decision no longer matches the live candidate set."""


@dataclass
class ChoicePoint:
    """One tie-break the oracle resolved."""

    #: ordinal of this choose() call within the run
    step: int
    #: earliest pending timestamp when the choice was made
    time: float
    #: live event seqs in natural (time, seq) order
    candidates: tuple[int, ...]
    #: the seq that was dispatched
    chosen: int
    #: events executed before this choice (position in the run's exec order)
    pos: int
    #: label of the chosen event, if one was recorded
    label: Any = None


@dataclass
class DecisionTrace:
    """A replayable schedule prefix: decisions keyed by choose ordinal."""

    scenario: str
    decisions: list[tuple[int, int]] = field(default_factory=list)
    note: str = ""

    def forced(self) -> dict[int, int]:
        return dict(self.decisions)

    def to_json(self) -> str:
        return json.dumps(
            {
                "scenario": self.scenario,
                "note": self.note,
                "decisions": [
                    {"step": step, "seq": seq}
                    for step, seq in self.decisions
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "DecisionTrace":
        raw = json.loads(text)
        return cls(
            scenario=raw["scenario"],
            decisions=[
                (int(d["step"]), int(d["seq"])) for d in raw["decisions"]
            ],
            note=raw.get("note", ""),
        )


class RecordingOracle:
    """Strict oracle: forced prefix, default (lowest seq) afterwards."""

    def __init__(self, forced: dict[int, int] | None = None) -> None:
        self.forced = dict(forced or {})
        self.points: list[ChoicePoint] = []
        self._step = 0
        #: callable returning the current exec-order position (wired by
        #: the explorer to the monitor's event count)
        self.position: Any = None

    def choose(
        self, time: float, candidates: list[int], labels: dict[int, Any] | None
    ) -> int:
        step = self._step
        self._step = step + 1
        seq = self.forced.get(step)
        if seq is None:
            seq = candidates[0]
        elif seq not in candidates:
            raise ScheduleDivergence(
                f"forced decision at step {step} chose seq {seq}, "
                f"but the live candidates are {candidates}"
            )
        pos = self.position() if self.position is not None else 0
        label = labels.get(seq) if labels else None
        self.points.append(
            ChoicePoint(step, time, tuple(candidates), seq, pos, label)
        )
        return seq

    def decisions(self) -> list[tuple[int, int]]:
        """Every decision of the run, as a replayable forced prefix."""
        return [(p.step, p.chosen) for p in self.points]

    def nondefault_decisions(self) -> list[tuple[int, int]]:
        """Only the decisions that differ from the default tie-break."""
        return [
            (p.step, p.chosen)
            for p in self.points
            if p.chosen != p.candidates[0]
        ]


class ReplayOracle(RecordingOracle):
    """Tolerant replay: skips forced decisions that no longer line up.

    Used to replay a pinned bug trace against *fixed* code: the schedule
    prefix up to the fix's divergence point is reproduced exactly, later
    decisions apply only where the candidate sets still admit them.
    """

    def __init__(self, forced: dict[int, int] | None = None) -> None:
        super().__init__(forced)
        self.applied = 0
        self.skipped = 0

    def choose(
        self, time: float, candidates: list[int], labels: dict[int, Any] | None
    ) -> int:
        step = self._step
        wanted = self.forced.get(step)
        if wanted is not None and wanted not in candidates:
            self.skipped += 1
            self.forced.pop(step)
        elif wanted is not None:
            self.applied += 1
        return super().choose(time, candidates, labels)
