"""Schedule-space model checking for the runtime protocol layer.

The paper's §2.5 correctness properties are normally checked along the one
schedule the deterministic simulator happens to execute.  ``repro.verify``
drives the same :class:`~repro.sim.engine.SimEngine` through *all* relevant
schedules instead:

* :mod:`repro.verify.monitor` — a vector-clock happens-before layer over
  data-manager / index / lock operations, doubling as a race sanitizer
  (conflicting unordered fragment accesses become
  :class:`~repro.analysis.findings.Finding` errors) and as the DPOR
  independence relation (per-event dependence footprints);
* :mod:`repro.verify.oracle` — the pluggable tie-break oracle installed via
  :meth:`SimEngine.set_oracle`, recording a replayable decision trace;
* :mod:`repro.verify.explorer` — stateless DPOR exploration with sleep
  sets over the recorded traces, plus trace minimization;
* :mod:`repro.verify.scenarios` — small fixed 2–3 node scenarios
  (migration under read, balancer vs. pinned tasks, write-intent chains,
  replica-cache invalidation, service admission);
* :mod:`repro.verify.regressions` — mechanical reverts of the PR-6 and
  PR-8 protocol fixes, used to prove the checker rediscovers both bugs.

Run ``python -m repro.verify --help`` for the CLI.

This module stays import-light: runtime modules import
``repro.verify.monitor`` at module load, so nothing here may import the
runtime back.
"""
