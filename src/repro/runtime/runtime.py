"""The AllScale runtime façade.

Assembles the per-process components (queues, lock tables, data item
managers), the hierarchical index, and the scheduler over a simulated
cluster, and exposes the small API applications use:

* :meth:`register_item` — introduce a data item (the *create* action),
  optionally pre-placing an initial distribution;
* :meth:`submit` — schedule a task, receiving its treeture;
* :meth:`spawn` / :meth:`run` — drive simulation processes and the event
  loop;
* :meth:`wait` — run the event loop until a treeture completes.

The runtime also keeps the system-wide replica registry used to enforce
the exclusive-writes property (replicas of a region being written are
invalidated before the write starts).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.analysis.admission import attach_from_global as attach_analysis
from repro.items.base import DataItem
from repro.regions.base import Region
from repro.regions.bounds import bounds_disjoint, corner_bounds
from repro.regions.kernel import get_kernel
from repro.runtime.config import RuntimeConfig
from repro.runtime.index import HierarchicalIndex
from repro.runtime.policies import DataAwarePolicy, SchedulingPolicy
from repro.runtime.process import RuntimeProcess
from repro.runtime.scheduler import Scheduler
from repro.runtime.sentinel import attach_from_global
from repro.runtime.tasks import TaskSpec, Treeture
from repro.sim.cluster import Cluster
from repro.verify import monitor as _verify


class AllScaleRuntime:
    """One runtime instance spanning a whole simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        config: RuntimeConfig | None = None,
        policy: SchedulingPolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or RuntimeConfig()
        self.policy = policy or DataAwarePolicy()
        # policies are reused across runtimes (the placement tournament
        # races one instance over many runs) — drop any run-local state
        self.policy.reset()
        self.engine = cluster.engine
        self.network = cluster.network
        self.metrics = cluster.metrics
        self.index = HierarchicalIndex(
            self.network,
            cluster.num_nodes,
            self.config.control_message_bytes,
        )
        self.scheduler = Scheduler(self)
        self.processes = [
            RuntimeProcess(self, pid, node)
            for pid, node in enumerate(cluster.nodes)
        ]
        self._home_maps: dict[DataItem, list[Region] | None] = {}
        self._replicas: dict[DataItem, dict[int, Region]] = {}
        self._items: list[DataItem] = []
        #: staging write intents: id(task) -> (seq, pid, {item: (write
        #: region, corner bounds)}, task ref — pins the id).  Registered
        #: while a leaf stages its write set, cleared once its locks are
        #: verified; competing stagers defer to *older* intents.
        self._write_intents: dict[
            int, tuple[int, int, dict, dict, object]
        ] = {}
        self._intent_seq = 0
        self._intent_waiters: list = []
        #: optional per-task lifecycle tracing (repro.runtime.tracing)
        self.tracer = None
        #: optional invariant sentinel (repro.runtime.sentinel)
        self.sentinel = None
        #: optional submit-time admission controller (repro.analysis.admission)
        self.analyzer = None
        #: optional job-level accounting context (repro.runtime.jobs) —
        #: set by the service layer when this runtime executes one tenant
        #: job over a shared cluster
        self.job_context = None
        #: optional periodic load balancer; created (but not started) when
        #: the config asks for it — drivers start it around the measured
        #: phase and stop it before returning, so the event loop drains
        self.balancer = None
        if self.config.load_balancing:
            from repro.runtime.balancer import LoadBalancer

            self.balancer = LoadBalancer(
                self,
                interval=self.config.balancer_interval,
                imbalance_threshold=self.config.balancer_threshold,
            )
        # kernel counters are process-wide; remember the creation-time
        # snapshot so this runtime's metrics report only its own activity
        self._region_stats_base = get_kernel().stats()
        # honor process-wide sentinel enablement (REPRO_SENTINEL=1,
        # bench --sentinel, the tier-1 sentinel fixture)
        attach_from_global(self)
        # honor process-wide admission enablement (REPRO_ANALYZE=1,
        # bench --analyze, the analysis CLI targets)
        attach_analysis(self)

    # -- structure ---------------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return len(self.processes)

    def process(self, pid: int) -> RuntimeProcess:
        return self.processes[pid]

    @property
    def items(self) -> list[DataItem]:
        return list(self._items)

    # -- data items -----------------------------------------------------------------

    def register_item(
        self,
        item: DataItem,
        placement: list[Region] | None = None,
    ) -> None:
        """Introduce a data item to the runtime (the *create* action).

        ``placement`` optionally pre-allocates region ``placement[p]`` at
        process ``p`` — the moral equivalent of an application whose
        initialization tasks have already spread the data (used by tests
        and by apps that start from a known distribution).  Without it, no
        memory is allocated until first touch, exactly like the *create*
        rule.

        A policy carrying an offline :class:`~repro.placement.plan.
        PlacementPlan` (``planned_layout``) overrides both defaults: the
        plan's layout for this item is pre-distributed, which is the
        planner's whole point — data starts where the plan wants the
        tasks to land.
        """
        if item in self._home_maps:
            raise ValueError(f"item {item.name!r} registered twice")
        planned_layout = getattr(self.policy, "planned_layout", None)
        if planned_layout is not None:
            planned = planned_layout(item, self.num_processes)
            if planned is not None:
                placement = planned
                self.metrics.incr("placement.preplaced_items")
        self.index.register_item(item)
        try:
            homes: list[Region] | None = item.decompose(self.num_processes)
        except NotImplementedError:
            homes = None
        self._home_maps[item] = homes
        self._items.append(item)
        if self.sentinel is not None:
            self.sentinel.on_item_registered(item)
        if placement is not None:
            if len(placement) != self.num_processes:
                raise ValueError(
                    f"placement has {len(placement)} entries for "
                    f"{self.num_processes} processes"
                )
            for pid, region in enumerate(placement):
                if not region.is_empty():
                    self.processes[pid].data_manager.allocate(item, region)

    def home_map(self, item: DataItem) -> list[Region] | None:
        """Structural even-spreading hint used by the default policy."""
        return self._home_maps.get(item)

    def destroy_item(self, item: DataItem) -> None:
        """Drop an item's fragments and bookkeeping (the *destroy* action)."""
        if self.sentinel is not None:
            # sanctioned coverage drop: stop tracking before the teardown
            self.sentinel.on_item_destroyed(item)
        for process in self.processes:
            manager = process.data_manager
            fragment = manager.fragments.pop(item, None)
            if fragment is not None:
                process.node.free(fragment.nbytes)
            manager.owned.pop(item, None)
            self.index.update_ownership(item, process.pid, item.empty_region())
        self._replicas.pop(item, None)
        self._home_maps.pop(item, None)
        if item in self._items:
            self._items.remove(item)

    # -- elastic membership (dynamic environments, paper §2.4 outlook) ---------------------

    def add_process(
        self,
        cores: int | None = None,
        flops_per_core: float | None = None,
        memory_bytes: float | None = None,
        gpus: int | None = None,
    ) -> int:
        """Grow the runtime by one process on a freshly joined node.

        The cluster gains a (possibly heterogeneous) node, the index
        hierarchy grows to cover the new leaf, and the structural home
        maps are recomputed over the new process count so first-touch
        spreading includes the newcomer.  Existing ownership is untouched
        — use :func:`repro.runtime.elastic.scale_out` to also migrate an
        ownership share over.  Returns the new pid.
        """
        node_id = self.cluster.add_node(
            cores=cores,
            flops_per_core=flops_per_core,
            memory_bytes=memory_bytes,
            gpus=gpus,
        )
        self.index.grow(self.cluster.num_nodes)
        process = RuntimeProcess(self, node_id, self.cluster.node(node_id))
        self.processes.append(process)
        self._refresh_home_maps()
        if self.balancer is not None:
            self.balancer.on_capacity_change()
        self.metrics.incr("runtime.nodes_joined")
        return node_id

    def _refresh_home_maps(self) -> None:
        """Recompute structural spreading hints after a capacity change."""
        for item in self._items:
            try:
                homes: list[Region] | None = item.decompose(
                    self.num_processes
                )
            except NotImplementedError:
                homes = None
            self._home_maps[item] = homes

    # -- node failure (dynamic environments, paper §2.4 outlook) ---------------------------

    def fail_process(self, pid: int) -> None:
        """Simulate the crash of one node.

        Must be invoked at a task barrier (no tasks queued or running on
        the victim).  All data the node held — owned fragments and
        replicas — is lost; the index is updated so lookups report the
        lost regions as present nowhere.  Use
        :meth:`~repro.runtime.resilience.ResilienceManager.recover_lost_data`
        with a prior checkpoint to re-materialize the lost regions on the
        survivors.
        """
        process = self.processes[pid]
        if process.queue or process.active:
            raise RuntimeError(
                f"process {pid} still has work; failures are only modelled "
                "at task barriers"
            )
        process.failed = True
        manager = process.data_manager
        # per item: drop the local state *before* updating the index, so
        # data-manager and index leaf never disagree at an observation point
        victims = sorted(
            set(manager.fragments) | set(manager.owned),
            key=lambda item: item.name,
        )
        for item in victims:
            self.unregister_replica(item, pid, manager.replica_region(item))
            manager.fragments.pop(item, None)
            manager.owned.pop(item, None)
            self.index.update_ownership(item, pid, item.empty_region())
        # transfers addressed to the corpse: the markers die with it (the
        # ownership they covered was just dropped above), and any payload
        # still on the wire is discarded on arrival (dead-lettered) —
        # waiters re-check and find the regions present nowhere
        manager._in_flight.clear()
        manager._fetching.clear()
        for waiters in (
            manager._in_flight_waiters,
            manager._fetching_waiters,
        ):
            pending, waiters[:] = list(waiters), []
            for waiter in pending:
                waiter.complete(None)
        process.node.memory_used = 0.0
        if self.sentinel is not None:
            # sanctioned coverage drop: re-baseline global coverage
            self.sentinel.on_process_failed(pid)
        self.metrics.incr("runtime.node_failures")

    def alive_processes(self) -> list[int]:
        return [p.pid for p in self.processes if not p.failed]

    def available_processes(self) -> list[int]:
        """Processes eligible for new work: alive and not draining."""
        return [
            p.pid for p in self.processes if not (p.failed or p.draining)
        ]

    def _redirect_if_failed(self, target: int) -> int:
        """Route around failed/draining processes (next available pid).

        Draining processes are still alive — they finish what they hold —
        but accept no new placements; dispatch skips them exactly like a
        corpse, falling back to a merely-alive process only when every
        process is draining at once.
        """
        process = self.processes[target]
        if not (process.failed or process.draining):
            return target
        for offset in range(1, self.num_processes + 1):
            candidate = self.processes[
                (target + offset) % self.num_processes
            ]
            if not (candidate.failed or candidate.draining):
                return candidate.pid
        for offset in range(1, self.num_processes + 1):
            candidate = self.processes[
                (target + offset) % self.num_processes
            ]
            if not candidate.failed:
                return candidate.pid
        raise RuntimeError("all processes have failed")

    # -- replica registry ---------------------------------------------------------------

    def register_replica(self, item: DataItem, pid: int, region: Region) -> None:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_release(("rep", item.name), region)
        holders = self._replicas.setdefault(item, {})
        current = holders.get(pid, item.empty_region())
        holders[pid] = current.union(region)

    def unregister_replica(self, item: DataItem, pid: int, region: Region) -> None:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_release(("rep", item.name), region)
        holders = self._replicas.get(item)
        if not holders or pid not in holders:
            return
        remaining = holders[pid].difference(region)
        if remaining.is_empty():
            del holders[pid]
        else:
            holders[pid] = remaining

    def replica_holders(self, item: DataItem) -> dict[int, Region]:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("rep", item.name))
        return dict(self._replicas.get(item, {}))

    # -- write-intent reservations ----------------------------------------------------
    #
    # Staging is lock-free, so a writer repeatedly invalidating the replicas
    # a reader keeps re-fetching (or two writers stealing each other's
    # staged ownership) can ping-pong indefinitely: a livelock the
    # randomized-DAG sweep reproduced.  Intents break the symmetry with a
    # total order — a stager only ever waits for strictly *older* intents,
    # so the oldest one always makes progress and the wait graph is acyclic.

    def register_write_intent(
        self, owner: object, pid: int, regions: dict, reads: dict | None = None
    ) -> None:
        """Reserve ``regions`` ({item: write region}) while ``owner`` stages.

        ``reads`` ({item: read region}) records the stager's read premise:
        younger *writers* must not invalidate replicas an older stager is
        still fetching, or the pair ping-pongs re-fetch against
        invalidation until the fetch loop gives up.
        """
        monitor = _verify.current
        if monitor is not None:
            for item in set(regions) | set(reads or {}):
                monitor.sync_release(("intent", item.name))
        self._intent_seq += 1
        # bounding corners are precomputed so the blocked-check can
        # reject non-overlapping intents without touching the region
        # algebra (every stager probes every older intent — the exact
        # overlap test on unique pairs would churn the op cache)
        self._write_intents[id(owner)] = (
            self._intent_seq,
            pid,
            {
                item: (region, corner_bounds(region))
                for item, region in regions.items()
            },
            {
                item: (region, corner_bounds(region))
                for item, region in (reads or {}).items()
            },
            owner,
        )
        self._signal_intent_change()

    def clear_write_intent(self, owner: object) -> None:
        entry = self._write_intents.pop(id(owner), None)
        if entry is not None:
            monitor = _verify.current
            if monitor is not None:
                _seq, _pid, regions, reads, _ref = entry
                for item in set(regions) | set(reads):
                    monitor.sync_release(("intent", item.name))
            self._signal_intent_change()

    def write_intent_blocked(
        self,
        item: DataItem,
        region: Region,
        owner: object,
        against_reads: bool = False,
    ) -> bool:
        """True while an intent ``owner`` must defer to overlaps ``region``.

        Pure readers (no intent of their own) defer to every staging
        writer; intent holders defer only to older intents.  With
        ``against_reads`` the check additionally defers to older intents'
        *read* premises — used on the write path (ownership acquisition
        and replica invalidation), where proceeding would destroy
        replicas an older stager is still assembling.  Readers never
        block on reads, so the reader-side gates leave it off.
        """
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("intent", item.name))
        if not self._write_intents:
            return False
        own = self._write_intents.get(id(owner)) if owner is not None else None
        own_seq = own[0] if own is not None else None
        bounds = corner_bounds(region)
        for key, (seq, _pid, regions, reads, _ref) in self._write_intents.items():
            if owner is not None and key == id(owner):
                continue
            if own_seq is not None and seq > own_seq:
                continue
            entry = regions.get(item)
            if entry is not None:
                other_region, other_bounds = entry
                if not bounds_disjoint(bounds, other_bounds):
                    if other_region.overlaps(region):
                        return True
            if against_reads:
                entry = reads.get(item)
                if entry is not None:
                    other_region, other_bounds = entry
                    if bounds_disjoint(bounds, other_bounds):
                        continue
                    if other_region.overlaps(region):
                        return True
        return False

    def intent_change(self):
        """Future completing the next time any intent is set or cleared."""
        future = self.engine.future()
        self._intent_waiters.append(future)
        return future

    def _signal_intent_change(self) -> None:
        if self._intent_waiters:
            waiters, self._intent_waiters = self._intent_waiters, []
            for waiter in waiters:
                waiter.complete(None)

    def invalidate_replicas(
        self, item: DataItem, region: Region, keeper: int
    ) -> Generator:
        """Drop every remote replica overlapping ``region``.

        Enforces the start rule's ``D ∩ Dw = ∅`` premise before a write;
        waits for local locks at each holder, exactly like the *migrate*
        guard would.
        """
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("rep", item.name))
        holders = self._replicas.get(item, {})
        for pid in sorted(holders):
            if pid == keeper:
                continue
            overlap = holders.get(pid, item.empty_region()).intersect(region)
            if overlap.is_empty():
                continue
            yield self.network.send(
                keeper, pid, self.config.control_message_bytes
            )
            process = self.processes[pid]
            while process.locks.any_locked(item, overlap):
                yield process.locks.wait_for_change()
            process.data_manager.drop_replica(item, overlap)
            self.metrics.incr("dm.invalidations")

    # -- execution ---------------------------------------------------------------------

    def submit(
        self,
        task: TaskSpec,
        origin: int = 0,
        after: list[Treeture] | None = None,
    ) -> Treeture:
        """Schedule a task through Algorithm 2; returns its treeture.

        ``after`` defers placement until the listed treetures complete —
        dependency chaining without a global barrier.
        """
        if self.analyzer is not None:
            # static admission sees root submissions only: children
            # re-dispatched during splitting go through scheduler.assign
            # directly, and the expansion already covered them
            self.analyzer.on_submit(task)
        return self.scheduler.assign(task, origin=origin, after=after)

    def spawn(self, gen: Generator):
        """Run an application driver as a simulation process."""
        return self.engine.spawn(gen)

    def run(self, until: float | None = None) -> int:
        return self.engine.run(until=until)

    def wait(self, treeture: Treeture) -> Any:
        """Drive the event loop until ``treeture`` completes; return value."""
        while not treeture.done:
            processed = self.engine.run(max_events=100_000)
            if processed == 0 and not treeture.done:
                raise RuntimeError(
                    f"event queue drained but {treeture!r} never completed "
                    "(lost dependency or deadlock)"
                )
        if self.sentinel is not None:
            self.sentinel.verify_all()
        self.sync_region_metrics()
        return treeture.value

    def wait_process(self, gen: Generator) -> Any:
        """Spawn an application driver and run until it returns."""
        future = self.engine.spawn(gen)
        while not future.done:
            processed = self.engine.run(max_events=100_000)
            if processed == 0 and not future.done:
                raise RuntimeError(
                    "event queue drained but the driver never returned"
                )
        if self.sentinel is not None:
            self.sentinel.verify_all()
        self.sync_region_metrics()
        return future.value

    def sync_region_metrics(self) -> None:
        """Publish region-kernel cache counters into :attr:`metrics`.

        Counters (``region.cache_hits``, ``region.cache_misses``,
        ``region.interned``, plus per-op breakdowns) are deltas since this
        runtime was created, so concurrent runtimes in one process don't
        pollute each other.  Called automatically when :meth:`wait` /
        :meth:`wait_process` complete; idempotent.
        """
        self.metrics.flush()
        stats = get_kernel().stats()
        base = self._region_stats_base
        for name, value in stats.items():
            self.metrics.set(name, value - base.get(name, 0))
        self.metrics.set("engine.compactions", float(self.engine.compactions))

    @property
    def now(self) -> float:
        return self.engine.now

    # -- communication-layer introspection ---------------------------------------------

    def transfer_plans(self) -> list:
        """Finished transfer plans across all processes (audit window).

        Each data manager keeps its most recent plans in a bounded log;
        the static analyzer, sentinel tests, and property tests compare
        their planned against their moved bytes.
        """
        plans = []
        for process in self.processes:
            plans.extend(process.data_manager.plan_log)
        return plans

    def data_bytes_moved(self) -> int:
        """Total payload bytes that crossed address spaces so far."""
        return int(
            self.metrics.counter("dm.migrated_bytes")
            + self.metrics.counter("dm.replicated_bytes")
        )

    # -- invariants (test support) ----------------------------------------------------------

    def check_ownership_invariants(self) -> None:
        """Owned regions are disjoint across processes and match the index."""
        for item in self._items:
            seen = item.empty_region()
            for process in self.processes:
                owned = process.data_manager.owned_region(item)
                overlap = seen.intersect(owned)
                if not overlap.is_empty():
                    raise AssertionError(
                        f"ownership of {item.name!r} overlaps between "
                        f"processes ({overlap.size()} elements)"
                    )
                seen = seen.union(owned)
                indexed = self.index.owned_region(item, process.pid)
                if not indexed.same_elements(owned):
                    raise AssertionError(
                        f"index desynchronized for {item.name!r} at "
                        f"process {process.pid}"
                    )

    def __repr__(self) -> str:
        return (
            f"AllScaleRuntime({self.num_processes} processes, "
            f"t={self.engine.now:.6g}s)"
        )
