"""The AllScale runtime façade.

Assembles the per-process components (queues, lock tables, data item
managers), the hierarchical index, and the scheduler over a simulated
cluster, and exposes the small API applications use:

* :meth:`register_item` — introduce a data item (the *create* action),
  optionally pre-placing an initial distribution;
* :meth:`submit` — schedule a task, receiving its treeture;
* :meth:`spawn` / :meth:`run` — drive simulation processes and the event
  loop;
* :meth:`wait` — run the event loop until a treeture completes.

The runtime also keeps the system-wide replica registry used to enforce
the exclusive-writes property (replicas of a region being written are
invalidated before the write starts).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.regions.kernel import get_kernel
from repro.runtime.config import RuntimeConfig
from repro.runtime.index import HierarchicalIndex
from repro.runtime.policies import DataAwarePolicy, SchedulingPolicy
from repro.runtime.process import RuntimeProcess
from repro.runtime.scheduler import Scheduler
from repro.runtime.tasks import TaskSpec, Treeture
from repro.sim.cluster import Cluster


class AllScaleRuntime:
    """One runtime instance spanning a whole simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        config: RuntimeConfig | None = None,
        policy: SchedulingPolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or RuntimeConfig()
        self.policy = policy or DataAwarePolicy()
        self.engine = cluster.engine
        self.network = cluster.network
        self.metrics = cluster.metrics
        self.index = HierarchicalIndex(
            self.network,
            cluster.num_nodes,
            self.config.control_message_bytes,
        )
        self.scheduler = Scheduler(self)
        self.processes = [
            RuntimeProcess(self, pid, node)
            for pid, node in enumerate(cluster.nodes)
        ]
        self._home_maps: dict[DataItem, list[Region] | None] = {}
        self._replicas: dict[DataItem, dict[int, Region]] = {}
        self._items: list[DataItem] = []
        #: optional per-task lifecycle tracing (repro.runtime.tracing)
        self.tracer = None
        # kernel counters are process-wide; remember the creation-time
        # snapshot so this runtime's metrics report only its own activity
        self._region_stats_base = get_kernel().stats()

    # -- structure ---------------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return len(self.processes)

    def process(self, pid: int) -> RuntimeProcess:
        return self.processes[pid]

    @property
    def items(self) -> list[DataItem]:
        return list(self._items)

    # -- data items -----------------------------------------------------------------

    def register_item(
        self,
        item: DataItem,
        placement: list[Region] | None = None,
    ) -> None:
        """Introduce a data item to the runtime (the *create* action).

        ``placement`` optionally pre-allocates region ``placement[p]`` at
        process ``p`` — the moral equivalent of an application whose
        initialization tasks have already spread the data (used by tests
        and by apps that start from a known distribution).  Without it, no
        memory is allocated until first touch, exactly like the *create*
        rule.
        """
        if item in self._home_maps:
            raise ValueError(f"item {item.name!r} registered twice")
        self.index.register_item(item)
        try:
            homes: list[Region] | None = item.decompose(self.num_processes)
        except NotImplementedError:
            homes = None
        self._home_maps[item] = homes
        self._items.append(item)
        if placement is not None:
            if len(placement) != self.num_processes:
                raise ValueError(
                    f"placement has {len(placement)} entries for "
                    f"{self.num_processes} processes"
                )
            for pid, region in enumerate(placement):
                if not region.is_empty():
                    self.processes[pid].data_manager.allocate(item, region)

    def home_map(self, item: DataItem) -> list[Region] | None:
        """Structural even-spreading hint used by the default policy."""
        return self._home_maps.get(item)

    def destroy_item(self, item: DataItem) -> None:
        """Drop an item's fragments and bookkeeping (the *destroy* action)."""
        for process in self.processes:
            manager = process.data_manager
            fragment = manager.fragments.pop(item, None)
            if fragment is not None:
                process.node.free(fragment.nbytes)
            manager.owned.pop(item, None)
            self.index.update_ownership(item, process.pid, item.empty_region())
        self._replicas.pop(item, None)
        self._home_maps.pop(item, None)
        if item in self._items:
            self._items.remove(item)

    # -- node failure (dynamic environments, paper §2.4 outlook) ---------------------------

    def fail_process(self, pid: int) -> None:
        """Simulate the crash of one node.

        Must be invoked at a task barrier (no tasks queued or running on
        the victim).  All data the node held — owned fragments and
        replicas — is lost; the index is updated so lookups report the
        lost regions as present nowhere.  Use
        :meth:`~repro.runtime.resilience.ResilienceManager.recover_lost_data`
        with a prior checkpoint to re-materialize the lost regions on the
        survivors.
        """
        process = self.processes[pid]
        if process.queue or process.active:
            raise RuntimeError(
                f"process {pid} still has work; failures are only modelled "
                "at task barriers"
            )
        process.failed = True
        manager = process.data_manager
        for item in list(manager.fragments):
            self.unregister_replica(item, pid, manager.replica_region(item))
            self.index.update_ownership(item, pid, item.empty_region())
        manager.fragments.clear()
        manager.owned.clear()
        process.node.memory_used = 0.0
        self.metrics.incr("runtime.node_failures")

    def alive_processes(self) -> list[int]:
        return [p.pid for p in self.processes if not p.failed]

    def _redirect_if_failed(self, target: int) -> int:
        """Route around failed processes (next alive pid, wrapping)."""
        if not self.processes[target].failed:
            return target
        alive = self.alive_processes()
        if not alive:
            raise RuntimeError("all processes have failed")
        for offset in range(1, self.num_processes + 1):
            candidate = (target + offset) % self.num_processes
            if not self.processes[candidate].failed:
                return candidate
        raise AssertionError("unreachable")

    # -- replica registry ---------------------------------------------------------------

    def register_replica(self, item: DataItem, pid: int, region: Region) -> None:
        holders = self._replicas.setdefault(item, {})
        current = holders.get(pid, item.empty_region())
        holders[pid] = current.union(region)

    def unregister_replica(self, item: DataItem, pid: int, region: Region) -> None:
        holders = self._replicas.get(item)
        if not holders or pid not in holders:
            return
        remaining = holders[pid].difference(region)
        if remaining.is_empty():
            del holders[pid]
        else:
            holders[pid] = remaining

    def replica_holders(self, item: DataItem) -> dict[int, Region]:
        return dict(self._replicas.get(item, {}))

    def invalidate_replicas(
        self, item: DataItem, region: Region, keeper: int
    ) -> Generator:
        """Drop every remote replica overlapping ``region``.

        Enforces the start rule's ``D ∩ Dw = ∅`` premise before a write;
        waits for local locks at each holder, exactly like the *migrate*
        guard would.
        """
        holders = self._replicas.get(item, {})
        for pid in sorted(holders):
            if pid == keeper:
                continue
            overlap = holders.get(pid, item.empty_region()).intersect(region)
            if overlap.is_empty():
                continue
            yield self.network.send(
                keeper, pid, self.config.control_message_bytes
            )
            process = self.processes[pid]
            while process.locks.any_locked(item, overlap):
                yield process.locks.wait_for_change()
            process.data_manager.drop_replica(item, overlap)
            self.metrics.incr("dm.invalidations")

    # -- execution ---------------------------------------------------------------------

    def submit(
        self,
        task: TaskSpec,
        origin: int = 0,
        after: list[Treeture] | None = None,
    ) -> Treeture:
        """Schedule a task through Algorithm 2; returns its treeture.

        ``after`` defers placement until the listed treetures complete —
        dependency chaining without a global barrier.
        """
        return self.scheduler.assign(task, origin=origin, after=after)

    def spawn(self, gen: Generator):
        """Run an application driver as a simulation process."""
        return self.engine.spawn(gen)

    def run(self, until: float | None = None) -> int:
        return self.engine.run(until=until)

    def wait(self, treeture: Treeture) -> Any:
        """Drive the event loop until ``treeture`` completes; return value."""
        while not treeture.done:
            processed = self.engine.run(max_events=100_000)
            if processed == 0 and not treeture.done:
                raise RuntimeError(
                    f"event queue drained but {treeture!r} never completed "
                    "(lost dependency or deadlock)"
                )
        self.sync_region_metrics()
        return treeture.value

    def wait_process(self, gen: Generator) -> Any:
        """Spawn an application driver and run until it returns."""
        future = self.engine.spawn(gen)
        while not future.done:
            processed = self.engine.run(max_events=100_000)
            if processed == 0 and not future.done:
                raise RuntimeError(
                    "event queue drained but the driver never returned"
                )
        self.sync_region_metrics()
        return future.value

    def sync_region_metrics(self) -> None:
        """Publish region-kernel cache counters into :attr:`metrics`.

        Counters (``region.cache_hits``, ``region.cache_misses``,
        ``region.interned``, plus per-op breakdowns) are deltas since this
        runtime was created, so concurrent runtimes in one process don't
        pollute each other.  Called automatically when :meth:`wait` /
        :meth:`wait_process` complete; idempotent.
        """
        stats = get_kernel().stats()
        base = self._region_stats_base
        for name, value in stats.items():
            self.metrics.set(name, value - base.get(name, 0))

    @property
    def now(self) -> float:
        return self.engine.now

    # -- invariants (test support) ----------------------------------------------------------

    def check_ownership_invariants(self) -> None:
        """Owned regions are disjoint across processes and match the index."""
        for item in self._items:
            seen = item.empty_region()
            for process in self.processes:
                owned = process.data_manager.owned_region(item)
                overlap = seen.intersect(owned)
                if not overlap.is_empty():
                    raise AssertionError(
                        f"ownership of {item.name!r} overlaps between "
                        f"processes ({overlap.size()} elements)"
                    )
                seen = seen.union(owned)
                indexed = self.index.owned_region(item, process.pid)
                if not indexed.same_elements(owned):
                    raise AssertionError(
                        f"index desynchronized for {item.name!r} at "
                        f"process {process.pid}"
                    )

    def __repr__(self) -> str:
        return (
            f"AllScaleRuntime({self.num_processes} processes, "
            f"t={self.engine.now:.6g}s)"
        )
