"""Resilience manager: data item checkpoint and restart (paper §3.2/§6).

The paper lists runtime-based task checkpointing as a service the
application model enables (deliverable D5.7) and as ongoing work.  Because
the runtime owns the distribution of all data items, a checkpoint is simply
the set of every process's fragment payloads; restoring re-creates the
distribution on a (possibly different-sized) runtime — the data preservation
property guarantees nothing else is needed to resume between task barriers.

Checkpoint cost is charged to the simulation: each process serializes its
fragments (core time) and ships them to stable storage modelled as a peer
stream with the configured network bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.items.base import DataItem, FragmentPayload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


def _extract_sub_payload(
    item: DataItem, payload: FragmentPayload, region
) -> FragmentPayload:
    """Cut the sub-``region`` out of a checkpointed payload."""
    staging = item.new_fragment(
        item.empty_region(), functional=payload.data is not None
    )
    staging.insert(payload)
    return staging.extract(region)


@dataclass
class Checkpoint:
    """A consistent snapshot of all data items' contents and distribution."""

    sim_time: float
    #: item name -> list of (owning pid, payload)
    payloads: dict[str, list[tuple[int, FragmentPayload]]] = field(
        default_factory=dict
    )

    def total_bytes(self) -> int:
        return sum(
            payload.nbytes
            for entries in self.payloads.values()
            for _pid, payload in entries
        )


class ResilienceManager:
    """Checkpoint/restore of the runtime's data items."""

    def __init__(self, runtime: "AllScaleRuntime") -> None:
        self.runtime = runtime

    # -- checkpoint ---------------------------------------------------------------

    def checkpoint(self) -> Generator:
        """Simulation process producing a :class:`Checkpoint`.

        Must run at a task barrier (no tasks holding locks); the runtime's
        apps checkpoint between pfor steps, where that holds by
        construction.
        """
        runtime = self.runtime
        cfg = runtime.config
        snapshot = Checkpoint(sim_time=runtime.now)
        for item in runtime.items:
            entries: list[tuple[int, FragmentPayload]] = []
            for process in runtime.processes:
                manager = process.data_manager
                owned = manager.owned_region(item)
                if owned.is_empty():
                    continue
                yield process.node.execute(cfg.fragment_op_overhead)
                payload = manager.fragment(item).extract(owned)
                # stream to stable storage: modelled as a full-bandwidth
                # send to the process's own NIC (stable store is off-node)
                target = (process.pid + 1) % runtime.num_processes
                yield runtime.network.send(
                    process.pid, target, max(1, payload.nbytes)
                )
                entries.append((process.pid, payload))
            if entries:
                snapshot.payloads[item.name] = entries
        if runtime.sentinel is not None:
            # record coverage + byte totals the restore must reproduce
            runtime.sentinel.on_checkpoint(snapshot)
        runtime.metrics.incr("resilience.checkpoints")
        return snapshot

    # -- recovery from node loss --------------------------------------------------------

    def recover_lost_data(self, snapshot: Checkpoint) -> Generator:
        """Re-materialize data lost to a node failure from a checkpoint.

        For every item, whatever part of ``elems(d)`` is currently present
        nowhere (the failed node's share) is restored from the checkpoint
        payloads onto the surviving processes, spread round-robin.  Data
        still alive is left untouched — survivors keep their (possibly
        newer) state; only the lost region rolls back to checkpoint time,
        which is the standard partial-restart semantics the model's data
        preservation property makes safe between task barriers.
        """
        runtime = self.runtime
        cfg = runtime.config
        by_name = {item.name: item for item in runtime.items}
        survivors = [
            p.pid for p in runtime.processes if not p.failed
        ]
        if not survivors:
            raise RuntimeError("no surviving processes to recover onto")
        cursor = 0
        for item_name, entries in snapshot.payloads.items():
            item = by_name.get(item_name)
            if item is None:
                continue
            lost = item.full_region
            for process in runtime.processes:
                lost = lost.difference(
                    process.data_manager.present_region(item)
                )
                if not process.failed:
                    # in flight to a live owner: the bytes are on the
                    # wire, not lost — restoring them would double-own
                    lost = lost.difference(
                        process.data_manager.in_flight_region(item)
                    )
            if lost.is_empty():
                continue
            for _pid, payload in entries:
                part = payload.region.intersect(lost)
                if part.is_empty():
                    continue
                target = runtime.process(survivors[cursor % len(survivors)])
                cursor += 1
                sub = _extract_sub_payload(item, payload, part)
                source = (target.pid + 1) % runtime.num_processes
                yield runtime.network.send(
                    source, target.pid, max(1, sub.nbytes)
                )
                yield target.node.execute(cfg.fragment_op_overhead)
                # re-check under the synchronous horizon: while the restore
                # payload was on the wire, a running task may have first-
                # touched part of the lost region (the index reported it
                # present nowhere — that is what "lost" means).  The live
                # allocation wins; restoring over it would create two
                # owners.  Only what is *still* absent everywhere lands.
                still_lost = sub.region
                for process in runtime.processes:
                    still_lost = still_lost.difference(
                        process.data_manager.present_region(item)
                    )
                    if not process.failed:
                        still_lost = still_lost.difference(
                            process.data_manager.in_flight_region(item)
                        )
                if still_lost.is_empty():
                    continue
                if not still_lost.same_elements(sub.region):
                    sub = _extract_sub_payload(item, sub, still_lost)
                target.data_manager.import_owned(item, sub)
            runtime.metrics.incr("resilience.recovered_items")
        if runtime.sentinel is not None:
            runtime.sentinel.on_recovery(snapshot)
        runtime.metrics.incr("resilience.recoveries")

    # -- restore ---------------------------------------------------------------------

    def restore(self, snapshot: Checkpoint) -> Generator:
        """Re-create the checkpointed distribution on this runtime.

        The target runtime may have a different process count: payloads for
        processes beyond the current count fold onto ``pid % P`` — data
        items make the re-decomposition safe, which is the point of the
        model's resilience story.
        """
        runtime = self.runtime
        cfg = runtime.config
        by_name = {item.name: item for item in runtime.items}
        for item_name, entries in snapshot.payloads.items():
            item = by_name.get(item_name)
            if item is None:
                raise KeyError(
                    f"checkpoint contains unknown item {item_name!r}; "
                    "register it before restoring"
                )
            for pid, payload in entries:
                target = pid % runtime.num_processes
                process = runtime.process(target)
                source = (target + 1) % runtime.num_processes
                yield runtime.network.send(
                    source, target, max(1, payload.nbytes)
                )
                yield process.node.execute(cfg.fragment_op_overhead)
                process.data_manager.import_owned(item, payload)
        if runtime.sentinel is not None:
            runtime.sentinel.on_restore(snapshot)
        runtime.metrics.incr("resilience.restores")
