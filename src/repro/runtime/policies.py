"""Scheduling policies (paper §3.2, Algorithm 2 lines 3 and 12).

The customizable scheduling policy makes two decisions per task:

* ``pick_variant`` — run the task's sequential (leaf) variant or its
  parallel (split) variant, based on granularity;
* ``pick_target`` — where to place a task whose data requirements no
  single process covers, which is what spreads work (and therefore data)
  across the system during the initialization phase.

The default :class:`DataAwarePolicy` targets the process owning the
largest share of the task's write set (falling back to the read set),
and — for data present nowhere — derives an even-spreading *home hint*
from the data item's structural decomposition, which is exactly how the
paper's policy achieves an even initial distribution.  Round-robin and
random policies exist for the scheduler ablation benchmark.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.runtime.tasks import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


@dataclass
class PlacementContext:
    """Everything the policy may consult when placing one task."""

    runtime: "AllScaleRuntime"
    origin: int
    #: (region_part, owner) pairs from the scheduler's index lookup,
    #: per accessed item
    lookup: dict[DataItem, list[tuple[Region, int]]] = field(
        default_factory=dict
    )


class SchedulingPolicy(ABC):
    """Variant selection and task placement strategy."""

    @abstractmethod
    def pick_variant(self, task: TaskSpec, runtime: "AllScaleRuntime") -> str:
        """Return ``"split"`` or ``"leaf"`` (Algorithm 2, line 3)."""

    @abstractmethod
    def pick_target(self, task: TaskSpec, ctx: PlacementContext) -> int:
        """Return the process id to enqueue at (Algorithm 2, line 12)."""

    def reset(self) -> None:
        """Forget run-local state; invoked at runtime construction.

        Policy instances are routinely reused across runtimes (the
        scheduler-ablation benchmarks race one instance over many runs);
        any cursor or RNG state carried over would make the second run
        depend on the first.  Stateless policies inherit this no-op.
        """

    # -- shared granularity logic ------------------------------------------------

    def _should_split(self, task: TaskSpec, runtime: "AllScaleRuntime") -> bool:
        if not task.splittable:
            return False
        cfg = runtime.config
        granularity = task.granularity
        if granularity is None:
            granularity = cfg.min_task_size
        return task.size_hint > max(granularity, cfg.min_task_size)

    def _should_offload(self, task: TaskSpec, runtime: "AllScaleRuntime") -> bool:
        """Pick the GPU variant when the device beats a CPU core end to end.

        The variant-selection freedom of Definition 2.3 / Example 2.3: a
        task offering a device implementation runs it only where the
        transfer + launch costs are amortized.
        """
        if task.gpu_flops is None:
            return False
        spec = runtime.cluster.spec
        if spec.gpus_per_node < 1:
            return False
        device = runtime.cluster.accelerators[0][0].spec
        nbytes = task.transfer_bytes()
        gpu_time = (
            2 * device.link_latency
            + nbytes / device.link_bandwidth
            + device.launch_overhead
            + task.gpu_flops / device.flops
        )
        cpu_time = task.flops / spec.flops_per_core
        return gpu_time < cpu_time


class DataAwarePolicy(SchedulingPolicy):
    """Default policy: follow the data; spread evenly on first touch."""

    def pick_variant(self, task: TaskSpec, runtime: "AllScaleRuntime") -> str:
        if self._should_split(task, runtime):
            return "split"
        if self._should_offload(task, runtime):
            return "gpu"
        return "leaf"

    def pick_target(self, task: TaskSpec, ctx: PlacementContext) -> int:
        runtime = ctx.runtime
        # 1. the process owning the largest share of the write set (then
        #    the read set) — keeps tasks near their data
        shares: dict[int, float] = {}
        for item in task.accessed_items():
            weight = 4.0 if item in task.writes else 1.0
            wanted = task.accessed_region(item)
            for part, owner in ctx.lookup.get(item, ()):  # charged lookup
                overlap = part.intersect(wanted)
                if not overlap.is_empty():
                    shares[owner] = shares.get(owner, 0.0) + weight * overlap.size()
        if shares:
            best = max(shares.items(), key=lambda kv: (kv[1], -kv[0]))
            return best[0]
        # 2. nothing placed yet: structural home hint for even spreading
        hint = self._home_hint(task, runtime)
        if hint is not None:
            return hint
        # 3. no data requirements at all: keep it where it is
        return ctx.origin

    def _home_hint(self, task: TaskSpec, runtime: "AllScaleRuntime") -> int | None:
        best: tuple[float, int] | None = None
        for item in task.accessed_items():
            wanted = task.write_region(item)
            if wanted.is_empty():
                wanted = task.read_region(item)
            homes = runtime.home_map(item)
            if homes is None:
                continue
            for pid, home_region in enumerate(homes):
                overlap = home_region.intersect(wanted).size()
                if overlap and (best is None or overlap > best[0]):
                    best = (overlap, pid)
        return best[1] if best else None


class RoundRobinPolicy(SchedulingPolicy):
    """Ignore data placement; deal tasks out cyclically (ablation baseline)."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def pick_variant(self, task: TaskSpec, runtime: "AllScaleRuntime") -> str:
        return "split" if self._should_split(task, runtime) else "leaf"

    def pick_target(self, task: TaskSpec, ctx: PlacementContext) -> int:
        target = self._next % ctx.runtime.num_processes
        self._next += 1
        return target


class RandomPolicy(SchedulingPolicy):
    """Uniformly random placement (ablation baseline)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def pick_variant(self, task: TaskSpec, runtime: "AllScaleRuntime") -> str:
        return "split" if self._should_split(task, runtime) else "leaf"

    def pick_target(self, task: TaskSpec, ctx: PlacementContext) -> int:
        return self._rng.randrange(ctx.runtime.num_processes)
