"""Runtime cost-model and behaviour configuration.

The time constants approximate an HPX-class task runtime: single-digit
microsecond task overheads and sub-microsecond bookkeeping.  They matter
most for the TPC benchmark, where per-task overheads and small control
messages dominate; for stencil/iPiC3D the compute and halo terms dominate
and these knobs are second-order.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RuntimeConfig:
    """Knobs of the AllScale runtime prototype."""

    # -- task machinery ------------------------------------------------------
    #: core time to create/enqueue a task locally (allocation, queue ops)
    task_spawn_overhead: float = 1.5e-6
    #: core time to begin executing a dequeued task (dequeue, requirement check)
    task_start_overhead: float = 0.8e-6
    #: wire size of a task closure shipped to another process
    task_message_bytes: int = 512
    #: CPU time per *remote* task transfer at each end (closure
    #: serialization, parcel handling) — an HPX-prototype-class cost; it is
    #: what makes fine-grained remote tasks expensive (the paper's TPC
    #: observation)
    remote_task_cpu_overhead: float = 25e-6
    #: wire size of a task-completion notification
    completion_message_bytes: int = 64

    # -- data item manager -----------------------------------------------------
    #: wire size of a data request / index control message
    control_message_bytes: int = 96
    #: core time for fragment resize/import/export bookkeeping per operation
    fragment_op_overhead: float = 0.6e-6
    #: whether fragments materialize values (False = virtual, benchmark mode)
    functional: bool = True
    #: cache Algorithm-1 lookup results at their origin, invalidated by
    #: ownership version (an extension along §6's "closing the performance
    #: gap"; off by default to match the paper's prototype)
    index_caching: bool = False

    # -- communication layer (coalescing & prefetch; bench --comms) -------------
    #: coalesce per-peer transfers into bulk messages: all pieces a staging
    #: pass needs from one peer travel as one FragmentPayload, sibling
    #: tasks of one split share one index lookup and one parcel per
    #: destination.  Off by default to match the paper's prototype — the
    #: same movement happens, message by message
    comm_coalescing: bool = False
    #: at assign time, fetch a task's remote read-only pieces concurrently
    #: (single fan-out, all_of join) so the transfers overlap dispatch;
    #: identical bytes move either way, earlier
    replica_prefetch: bool = False
    #: LRU bound on the replicated bytes tracked per process (None =
    #: unbounded; eviction goes through the comms.* metered replica cache)
    replica_cache_bytes: float | None = None

    # -- service tenancy (repro.service; inert for one-shot runs) ----------------
    #: tenant label this runtime executes on behalf of, for per-tenant
    #: ``service.*`` metric attribution (None = not a service job)
    tenant: str | None = None
    #: core-seconds this job may charge before its
    #: :class:`~repro.runtime.jobs.JobContext` raises the sticky
    #: ``over_budget`` flag (None = unlimited).  Enforcement is a flag,
    #: not an exception: the simulation stays deterministic and the
    #: service settles the overrun at job completion.
    job_node_seconds_cap: float | None = None

    # -- load balancing (repro.runtime.balancer) ---------------------------------
    #: create a periodic data-migration load balancer at runtime
    #: construction (drivers start/stop it around their measured phase);
    #: off by default — most benchmarks measure the scheduler alone
    load_balancing: bool = False
    #: sampling interval of the configured balancer, simulated seconds
    balancer_interval: float = 0.01
    #: busiest/mean load ratio that triggers a migration
    balancer_threshold: float = 1.5

    # -- scheduling policy -------------------------------------------------------
    #: target number of leaf tasks per core (oversubscription factor)
    oversubscription: int = 4
    #: never split tasks below this many elements/iterations
    min_task_size: float = 1.0
    #: enable idle-time work stealing between processes
    work_stealing: bool = False
    #: seed for any randomized policy decisions
    seed: int = 0

    def __post_init__(self) -> None:
        if self.oversubscription < 1:
            raise ValueError("oversubscription must be >= 1")
        if self.min_task_size < 1:
            raise ValueError("min_task_size must be >= 1")
        for name in (
            "task_spawn_overhead",
            "task_start_overhead",
            "fragment_op_overhead",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.replica_cache_bytes is not None and self.replica_cache_bytes <= 0:
            raise ValueError("replica_cache_bytes must be positive or None")
        if self.balancer_interval <= 0:
            raise ValueError("balancer_interval must be positive")
        if self.balancer_threshold <= 1.0:
            raise ValueError("balancer_threshold must exceed 1.0")
        if (
            self.job_node_seconds_cap is not None
            and self.job_node_seconds_cap < 0
        ):
            raise ValueError("job_node_seconds_cap must be >= 0 or None")
