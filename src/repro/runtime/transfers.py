"""Transfer plans and the replica cache (the communication layer).

The runtimes this prototype models win back their many-small-message
overhead by *aggregating* transfers (DART-MPI's blocked one-sided
puts/gets, halo exchanges that move whole views at once).  This module
provides the two bookkeeping abstractions the optimisation layer is built
against:

* :class:`TransferPlan` — what a staging / prefetch pass *intends* to move
  versus what actually moved, per (item, region, peer, kind).  Both the
  scheduler (prefetch) and the data item manager (staging) build plans, so
  the sentinel and the static analyzer can audit planned bytes against
  moved bytes, and tests can assert that no region travels twice within
  one plan.
* :class:`ReplicaCache` — LRU-bounded accounting of the replicated
  (read-only) bytes a process holds, version-tagged with the hierarchical
  index's per-item ownership epoch.  Hits, misses, revalidations and
  evictions surface as ``comms.*`` metrics; when a byte bound is
  configured (``RuntimeConfig.replica_cache_bytes``) the least recently
  used unpinned replicas are dropped to stay under it.

Plans are pure bookkeeping: they charge no messages and hold no locks.
The data movement itself still goes through
:class:`~repro.runtime.data_manager.DataItemManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.items.base import DataItem
from repro.regions.base import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.data_manager import DataItemManager
    from repro.runtime.runtime import AllScaleRuntime
    from repro.runtime.tasks import TaskSpec


@dataclass(frozen=True, slots=True)
class TransferStep:
    """One planned or executed movement of a region of one item."""

    item: DataItem
    region: Region
    #: source process of the bytes (``dst`` itself for allocations)
    src: int
    #: destination process (the plan's address space)
    dst: int
    #: ``"replicate"``, ``"migrate"`` or ``"allocate"``
    kind: str
    #: payload bytes actually moved (0 for planned steps and allocations)
    nbytes: int = 0


class TransferPlan:
    """Planned-versus-moved ledger of one staging or prefetch pass."""

    __slots__ = ("dst", "purpose", "planned", "moved", "hits", "finished")

    def __init__(self, dst: int, purpose: str = "") -> None:
        self.dst = dst
        self.purpose = purpose
        self.planned: list[TransferStep] = []
        self.moved: list[TransferStep] = []
        #: reads satisfied locally without any transfer (replica reuse)
        self.hits: list[tuple[DataItem, Region]] = []
        self.finished = False

    # -- recording -----------------------------------------------------------------

    def plan(
        self, item: DataItem, region: Region, src: int, kind: str
    ) -> Region:
        """Record the intent to move ``region``; returns the not-yet-planned
        part (so one plan never *plans* the same elements twice)."""
        fresh = region.difference(self.planned_region(item))
        if not fresh.is_empty():
            self.planned.append(TransferStep(item, fresh, src, self.dst, kind))
        return fresh

    def record_moved(
        self, item: DataItem, region: Region, src: int, kind: str, nbytes: int
    ) -> None:
        if region.is_empty():
            return
        self.moved.append(TransferStep(item, region, src, self.dst, kind, nbytes))

    def record_hit(self, item: DataItem, region: Region) -> None:
        if not region.is_empty():
            self.hits.append((item, region))

    # -- views ---------------------------------------------------------------------

    def items(self) -> list[DataItem]:
        seen: list[DataItem] = []
        for step in self.planned + self.moved:
            if step.item not in seen:
                seen.append(step.item)
        for item, _region in self.hits:
            if item not in seen:
                seen.append(item)
        return seen

    def planned_region(self, item: DataItem) -> Region:
        region = item.empty_region()
        for step in self.planned:
            if step.item is item:
                region = region.union(step.region)
        return region

    def moved_region(self, item: DataItem) -> Region:
        region = item.empty_region()
        for step in self.moved:
            if step.item is item:
                region = region.union(step.region)
        return region

    def hit_region(self, item: DataItem) -> Region:
        region = item.empty_region()
        for hit_item, hit in self.hits:
            if hit_item is item:
                region = region.union(hit)
        return region

    def refetched_region(self, item: DataItem) -> Region:
        """Elements that travelled more than once within this plan.

        Legitimate only when a competing writer invalidated the first copy
        mid-staging; the determinism/property tests assert it stays empty
        on uncontended DAGs.
        """
        seen = item.empty_region()
        twice = item.empty_region()
        for step in self.moved:
            if step.item is not item or step.kind == "allocate":
                continue
            twice = twice.union(seen.intersect(step.region))
            seen = seen.union(step.region)
        return twice

    def planned_bytes(self) -> int:
        return sum(
            step.item.region_bytes(step.region)
            for step in self.planned
            if step.kind != "allocate"
        )

    def moved_bytes(self) -> int:
        return sum(step.nbytes for step in self.moved)

    def refetched_bytes(self) -> int:
        return sum(
            item.region_bytes(self.refetched_region(item))
            for item in self.items()
        )

    # -- completion ----------------------------------------------------------------

    def finish(self, runtime: "AllScaleRuntime") -> None:
        """Publish the plan's outcome (idempotent): ``comms.*`` metrics and
        the sentinel's planned-versus-moved audit."""
        if self.finished:
            return
        self.finished = True
        metrics = runtime.metrics
        metrics.incr("comms.plans")
        metrics.incr("comms.planned_bytes", self.planned_bytes())
        metrics.incr("comms.moved_bytes", self.moved_bytes())
        refetched = self.refetched_bytes()
        if refetched:
            metrics.incr("comms.refetched_bytes", refetched)
        if runtime.sentinel is not None:
            runtime.sentinel.on_plan_finished(self)

    def __repr__(self) -> str:
        return (
            f"TransferPlan(dst={self.dst}, purpose={self.purpose!r}, "
            f"planned={len(self.planned)}, moved={len(self.moved)}, "
            f"hits={len(self.hits)})"
        )


def plan_for_task(
    task: "TaskSpec", runtime: "AllScaleRuntime", target: int
) -> TransferPlan:
    """Build the transfer plan staging ``task`` at ``target`` implies under
    the *current* ownership state — synchronously, with no messages and no
    side effects.

    This is the static-audit entry point: the analyzer and tests compare
    it against the plans the data manager actually executed.
    """
    plan = TransferPlan(dst=target, purpose=f"static:{task.name}")
    manager = runtime.process(target).data_manager
    index = runtime.index
    for item in task.accessed_items_ordered():
        write = task.write_region(item)
        missing = write.difference(manager.owned_region(item))
        for pid in range(runtime.num_processes):
            if missing.is_empty():
                break
            if pid == target:
                continue
            part = index.owned_region(item, pid).intersect(missing)
            if not part.is_empty():
                plan.plan(item, part, pid, "migrate")
                missing = missing.difference(part)
        if not missing.is_empty():
            plan.plan(item, missing, target, "allocate")
        read = task.read_region(item)
        present = read.intersect(manager.present_region(item))
        plan.record_hit(
            item, present.difference(manager.owned_region(item))
        )
        wanted = read.difference(manager.present_region(item)).difference(
            plan.planned_region(item)
        )
        for pid in range(runtime.num_processes):
            if wanted.is_empty():
                break
            if pid == target:
                continue
            part = index.owned_region(item, pid).intersect(wanted)
            if not part.is_empty():
                plan.plan(item, part, pid, "replicate")
                wanted = wanted.difference(part)
        if not wanted.is_empty():
            plan.plan(item, wanted, target, "allocate")
    return plan


@dataclass(slots=True)
class _CacheEntry:
    region: Region
    #: index ownership epoch at fetch time
    version: int
    #: LRU clock value of the last touch
    tick: int
    nbytes: int


class ReplicaCache:
    """LRU accounting of one process's replicated bytes.

    The cache does not store data — fragments do; it tracks *what* was
    fetched, *when* it was last useful, and under which ownership epoch,
    and (when bounded) evicts cold replicas through
    :meth:`DataItemManager.drop_replica`.  Correctness never depends on
    it: writers still invalidate replicas explicitly, and an evicted
    region is simply re-fetched on next use.
    """

    __slots__ = ("manager", "max_bytes", "_entries", "_tick")

    def __init__(
        self, manager: "DataItemManager", max_bytes: float | None = None
    ) -> None:
        self.manager = manager
        self.max_bytes = max_bytes
        self._entries: dict[DataItem, list[_CacheEntry]] = {}
        self._tick = 0

    # -- helpers -------------------------------------------------------------------

    @property
    def _runtime(self) -> "AllScaleRuntime":
        return self.manager.process.runtime

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def tracked_bytes(self, item: DataItem | None = None) -> int:
        items = [item] if item is not None else list(self._entries)
        return sum(
            entry.nbytes for it in items for entry in self._entries.get(it, [])
        )

    def entries(self, item: DataItem) -> list[_CacheEntry]:
        return list(self._entries.get(item, []))

    # -- lifecycle hooks (called by the data manager) --------------------------------

    def note_fetched(self, item: DataItem, region: Region) -> None:
        """A replica of ``region`` just landed; start tracking it."""
        replicated = region.intersect(self.manager.replica_region(item))
        if replicated.is_empty():
            return
        self.note_dropped(item, replicated)  # refreshed, not duplicated
        self._entries.setdefault(item, []).append(
            _CacheEntry(
                region=replicated,
                version=self._runtime.index.ownership_version(item),
                tick=self._next_tick(),
                nbytes=item.region_bytes(replicated),
            )
        )
        self._evict(item)

    def note_dropped(self, item: DataItem, region: Region) -> None:
        """Replica bytes left the fragment (invalidation, claim, eviction)."""
        entries = self._entries.get(item)
        if not entries:
            return
        kept: list[_CacheEntry] = []
        for entry in entries:
            remaining = entry.region.difference(region)
            if remaining.is_empty():
                continue
            if remaining is not entry.region:
                entry.region = remaining
                entry.nbytes = item.region_bytes(remaining)
            kept.append(entry)
        if kept:
            self._entries[item] = kept
        else:
            self._entries.pop(item, None)

    def record_hit(self, item: DataItem, region: Region) -> None:
        """A read was served from already-present replicated bytes."""
        metrics = self._runtime.metrics
        metrics.incr("comms.replica_hits")
        metrics.incr("comms.replica_hit_bytes", item.region_bytes(region))
        version = self._runtime.index.ownership_version(item)
        for entry in self._entries.get(item, []):
            if entry.region.overlaps(region):
                entry.tick = self._next_tick()
                if entry.version != version:
                    # the ownership epoch moved since the fetch; the bytes
                    # are still valid (writers invalidate explicitly) but
                    # the placement knowledge behind them is stale
                    metrics.incr("comms.replica_revalidations")
                    entry.version = version

    def record_miss(self, item: DataItem, region: Region) -> None:
        metrics = self._runtime.metrics
        metrics.incr("comms.replica_misses")
        metrics.incr("comms.replica_miss_bytes", item.region_bytes(region))

    # -- eviction ------------------------------------------------------------------

    def _pinned_region(self, item: DataItem) -> Region:
        """Replica bytes that must not be evicted right now: locked by a
        local task, still arriving, or mid-fetch."""
        manager = self.manager
        pinned = manager.in_flight_region(item).union(
            manager.fetching_region(item)
        )
        for hold in manager.process.locks._holds:
            if hold.item is item:
                pinned = pinned.union(hold.region)
        return pinned

    def _evict(self, item: DataItem) -> None:
        if self.max_bytes is None:
            return
        metrics = self._runtime.metrics
        while self.tracked_bytes() > self.max_bytes:
            candidates = [
                (entry.tick, it, entry)
                for it, entries in self._entries.items()
                for entry in entries
            ]
            if not candidates:
                return
            candidates.sort(key=lambda c: c[0])
            evicted_any = False
            for _tick, victim_item, entry in candidates:
                victim = entry.region.difference(
                    self._pinned_region(victim_item)
                )
                if victim.is_empty():
                    continue
                nbytes = victim_item.region_bytes(victim)
                # drop_replica calls back into note_dropped, which trims
                # or removes this entry
                self.manager.drop_replica(victim_item, victim)
                metrics.incr("comms.replica_evictions")
                metrics.incr("comms.replica_evicted_bytes", nbytes)
                evicted_any = True
                break
            if not evicted_any:
                return  # everything left is pinned; stay over budget
