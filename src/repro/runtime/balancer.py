"""Inter-node load balancing through data migration (paper §3.2, §6).

The model's key enabler: because the runtime controls data placement, and
because the scheduler sends tasks to the data (Algorithm 2), *moving data
moves load*.  The balancer periodically samples per-process load, and when
the imbalance exceeds a threshold it migrates a slice of the busiest
process's owned region to the least-loaded process — "which will
implicitly lead to the redirection of future tasks to the newly designated
localities" (§3.2).

Slices are carved from box-set and interval regions (the grid-like items
where load imbalance arises in practice); items with other region schemes
are left alone.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator

from repro.regions.base import Region
from repro.regions.box import Box, BoxSetRegion
from repro.regions.interval import Interval, IntervalRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


def _carve_box(box: Box, want: int) -> list[Box]:
    """Boxes covering exactly ``want`` elements of ``box`` (0 < want < size).

    Takes whole slabs along the widest axis, then recurses into a single
    one-thick slab for the remainder; the rank drops each recursion, so
    the 1-D base case lands on ``want`` exactly.
    """
    widths = box.widths()
    axis = max(range(len(widths)), key=widths.__getitem__)
    row = box.size() // widths[axis]
    full, rem = divmod(want, row)
    pieces: list[Box] = []
    rest = box
    if full:
        piece, rest = box.split(axis, box.lo[axis] + full)
        pieces.append(piece)
    if rem:
        slab, _ = rest.split(axis, rest.lo[axis] + 1)
        pieces.extend(_carve_box(slab, rem))
    return pieces


def take_slice(region: Region, fraction: float) -> Region | None:
    """Carve ``ceil(size * fraction)`` elements of ``region`` off as a slice.

    Returns ``None`` for region types without a slicing strategy or when
    the region is too small to split (the slice must leave a non-empty
    remainder behind).
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if isinstance(region, BoxSetRegion):
        if region.is_empty():
            return None
        target = min(region.size() - 1, math.ceil(region.size() * fraction))
        if target < 1:
            return None
        taken: list[Box] = []
        got = 0
        for box in sorted(region.boxes, key=lambda b: (-b.size(), b.lo)):
            if got >= target:
                break
            if box.size() <= target - got:
                taken.append(box)
                got += box.size()
            else:
                taken.extend(_carve_box(box, target - got))
                got = target
        result = BoxSetRegion(taken)
        if result.is_empty() or result.size() >= region.size():
            return None
        return result
    if isinstance(region, IntervalRegion):
        want = min(region.size() - 1, math.ceil(region.size() * fraction))
        if want < 1:
            return None
        taken_ivs: list[Interval] = []
        got = 0
        for iv in region.intervals:
            if got >= want:
                break
            take = min(iv.size(), want - got)
            taken_ivs.append(Interval(iv.lo, iv.lo + take))
            got += take
        return IntervalRegion(taken_ivs)
    return None


class LoadBalancer:
    """Periodic data-migration-based load balancing."""

    def __init__(
        self,
        runtime: "AllScaleRuntime",
        interval: float = 0.05,
        imbalance_threshold: float = 1.5,
        slice_fraction: float | None = None,
    ) -> None:
        """``slice_fraction=None`` (default) sizes each migration
        adaptively — enough to bring the busiest node down to the mean —
        which converges instead of oscillating; a fixed fraction is mostly
        useful for tests."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if imbalance_threshold <= 1.0:
            raise ValueError("imbalance_threshold must exceed 1.0")
        self.runtime = runtime
        self.interval = interval
        self.imbalance_threshold = imbalance_threshold
        self.slice_fraction = slice_fraction
        self.rebalances = 0
        self._last_busy = [0.0] * runtime.num_processes
        self._running = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic balancing (runs while the event loop is driven)."""
        if not self._running:
            self._running = True
            self.runtime.engine.spawn(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        while self._running:
            yield self.interval
            yield from self.rebalance_once()

    # -- one balancing round -------------------------------------------------------

    def on_capacity_change(self) -> None:
        """Invalidate stale per-process state after a node joins.

        Without this, ``measured_load``'s zip against the construction-
        time sample vector silently truncated freshly joined processes
        out of every balancing decision — new capacity was invisible.
        """
        current = [p.node._busy_time for p in self.runtime.processes]
        self._last_busy.extend(current[len(self._last_busy):])

    def measured_load(self) -> list[float]:
        """Core-busy seconds per process since the previous sample.

        Busy time (not task counts) is the signal: equal task counts with
        unequal task costs are exactly the imbalance the balancer must
        detect.  Processes that joined since the previous sample start a
        fresh window (their busy time since join), so the vector always
        spans the *current* process count.
        """
        current = [p.node._busy_time for p in self.runtime.processes]
        if len(current) > len(self._last_busy):
            self.on_capacity_change()
        delta = [c - last for c, last in zip(current, self._last_busy)]
        self._last_busy = current
        return delta

    def rebalance_once(self) -> Generator:
        """Migrate one slice from the busiest to the idlest process if the
        imbalance warrants it.  Returns whether a migration happened."""
        runtime = self.runtime
        available = runtime.available_processes()
        if len(available) < 2:
            return False
        load = self.measured_load()
        # corpses and drainers report idle forever; migrating data onto
        # them would strand it, so both ends come from the available set
        busiest = max(available, key=load.__getitem__)
        idlest = min(available, key=load.__getitem__)
        mean = sum(load[pid] for pid in available) / len(available)
        if mean <= 0 or load[busiest] < self.imbalance_threshold * mean:
            return False
        if self.slice_fraction is not None:
            fraction = self.slice_fraction
        else:
            # shed exactly the excess over the mean (converges; a fixed
            # fraction oscillates between the busiest and idlest nodes)
            excess = (load[busiest] - mean) / load[busiest]
            fraction = min(0.5, max(0.05, excess))
        source = runtime.process(busiest).data_manager
        moved = False
        # shed the same fraction of *every* item: co-located items (e.g. a
        # stencil's two buffers) must move together, or tasks writing the
        # stay-behind buffer keep landing on the overloaded node
        for item in sorted(source.fragments, key=lambda i: i.name):
            owned = source.owned_region(item)
            piece = take_slice(owned, fraction) if not owned.is_empty() else None
            if piece is None:
                continue
            yield from runtime.process(idlest).data_manager._migrate_in(
                item, piece, busiest
            )
            runtime.metrics.incr("balancer.migrations")
            moved = True
        if moved:
            self.rebalances += 1
        return moved
