"""Inter-node load balancing through data migration (paper §3.2, §6).

The model's key enabler: because the runtime controls data placement, and
because the scheduler sends tasks to the data (Algorithm 2), *moving data
moves load*.  The balancer periodically samples per-process load, and when
the imbalance exceeds a threshold it migrates a slice of the busiest
process's owned region to the least-loaded process — "which will
implicitly lead to the redirection of future tasks to the newly designated
localities" (§3.2).

Slices are carved from box-set and interval regions (the grid-like items
where load imbalance arises in practice); items with other region schemes
are left alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.regions.base import Region
from repro.regions.box import Box, BoxSetRegion
from repro.regions.interval import IntervalRegion, split_interval_region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


def take_slice(region: Region, fraction: float) -> Region | None:
    """Carve roughly ``fraction`` of ``region`` off as a contiguous slice.

    Returns ``None`` for region types without a slicing strategy or when
    the region is too small to split.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if isinstance(region, BoxSetRegion):
        if region.is_empty():
            return None
        target = max(1, int(region.size() * fraction))
        taken: list[Box] = []
        got = 0
        for box in sorted(region.boxes, key=lambda b: (-b.size(), b.lo)):
            if got >= target:
                break
            if box.size() <= target - got:
                taken.append(box)
                got += box.size()
                continue
            widths = box.widths()
            axis = max(range(len(widths)), key=widths.__getitem__)
            want_rows = max(1, (target - got) * widths[axis] // box.size())
            if want_rows >= widths[axis]:
                taken.append(box)
                got += box.size()
            else:
                piece, _rest = box.split(axis, box.lo[axis] + want_rows)
                taken.append(piece)
                got += piece.size()
        result = BoxSetRegion(taken)
        if result.is_empty() or result.size() >= region.size():
            return None
        return result
    if isinstance(region, IntervalRegion):
        if region.size() < 2:
            return None
        parts = max(2, round(1.0 / fraction))
        chunks = split_interval_region(region, parts)
        return chunks[0] if not chunks[0].is_empty() else None
    return None


class LoadBalancer:
    """Periodic data-migration-based load balancing."""

    def __init__(
        self,
        runtime: "AllScaleRuntime",
        interval: float = 0.05,
        imbalance_threshold: float = 1.5,
        slice_fraction: float | None = None,
    ) -> None:
        """``slice_fraction=None`` (default) sizes each migration
        adaptively — enough to bring the busiest node down to the mean —
        which converges instead of oscillating; a fixed fraction is mostly
        useful for tests."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if imbalance_threshold <= 1.0:
            raise ValueError("imbalance_threshold must exceed 1.0")
        self.runtime = runtime
        self.interval = interval
        self.imbalance_threshold = imbalance_threshold
        self.slice_fraction = slice_fraction
        self.rebalances = 0
        self._last_busy = [0.0] * runtime.num_processes
        self._running = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic balancing (runs while the event loop is driven)."""
        if not self._running:
            self._running = True
            self.runtime.engine.spawn(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        while self._running:
            yield self.interval
            yield from self.rebalance_once()

    # -- one balancing round -------------------------------------------------------

    def measured_load(self) -> list[float]:
        """Core-busy seconds per process since the previous sample.

        Busy time (not task counts) is the signal: equal task counts with
        unequal task costs are exactly the imbalance the balancer must
        detect.
        """
        current = [p.node._busy_time for p in self.runtime.processes]
        delta = [c - last for c, last in zip(current, self._last_busy)]
        self._last_busy = current
        return delta

    def rebalance_once(self) -> Generator:
        """Migrate one slice from the busiest to the idlest process if the
        imbalance warrants it.  Returns whether a migration happened."""
        runtime = self.runtime
        if runtime.num_processes < 2:
            return False
        load = self.measured_load()
        busiest = max(range(len(load)), key=load.__getitem__)
        idlest = min(range(len(load)), key=load.__getitem__)
        mean = sum(load) / len(load)
        if mean <= 0 or load[busiest] < self.imbalance_threshold * mean:
            return False
        if self.slice_fraction is not None:
            fraction = self.slice_fraction
        else:
            # shed exactly the excess over the mean (converges; a fixed
            # fraction oscillates between the busiest and idlest nodes)
            excess = (load[busiest] - mean) / load[busiest]
            fraction = min(0.5, max(0.05, excess))
        source = runtime.process(busiest).data_manager
        moved = False
        # shed the same fraction of *every* item: co-located items (e.g. a
        # stencil's two buffers) must move together, or tasks writing the
        # stay-behind buffer keep landing on the overloaded node
        for item in sorted(source.fragments, key=lambda i: i.name):
            owned = source.owned_region(item)
            piece = take_slice(owned, fraction) if not owned.is_empty() else None
            if piece is None:
                continue
            yield from runtime.process(idlest).data_manager._migrate_in(
                item, piece, busiest
            )
            runtime.metrics.incr("balancer.migrations")
            moved = True
        if moved:
            self.rebalances += 1
        return moved
