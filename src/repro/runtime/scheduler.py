"""Inter-process task scheduling (paper §3.2, Algorithm 2).

``assign`` implements ``ASSIGN_TO_NODE``: the policy picks the variant,
then the task is dispatched to

1. a process whose owned regions cover *all* data requirements, else
2. a process covering all *write* requirements, else
3. wherever the scheduling policy chooses.

Coverage is derived from one charged hierarchical-index lookup over the
task's accessed regions (Algorithm 1), and the resulting ownership map is
handed to the policy so its placement decision reuses the same
information.  Remote dispatch ships the task closure as a network message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.runtime.policies import PlacementContext
from repro.runtime.tasks import TaskSpec, Treeture

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


class Scheduler:
    """Algorithm 2 plus the plumbing to move tasks between processes."""

    def __init__(self, runtime: "AllScaleRuntime") -> None:
        self.runtime = runtime

    # -- public entry -------------------------------------------------------------

    def assign(
        self,
        task: TaskSpec,
        origin: int = 0,
        after: list[Treeture] | None = None,
    ) -> Treeture:
        """Schedule ``task``; returns its treeture immediately.

        ``after`` lists treetures that must complete before the task is
        even placed — fine-grained dependencies without a global barrier
        (the AllScale API's treeture-composition style).
        """
        runtime = self.runtime
        treeture = Treeture(runtime.engine, task.name)
        if after:
            gate = runtime.engine.all_of([t.future for t in after])

            def launch(_values) -> None:
                runtime.engine.spawn(
                    self._assign_process(task, treeture, origin)
                )

            gate.add_callback(launch)
        else:
            runtime.engine.spawn(self._assign_process(task, treeture, origin))
        return treeture

    def assign_batch(
        self, tasks: list[TaskSpec], origin: int = 0
    ) -> list[Treeture]:
        """Co-schedule sibling tasks of one split as a batch.

        One charged Algorithm-1 lookup resolves the *union* of every
        sibling's accessed regions per item, each task is placed from its
        clip of that shared mapping (element-identical to a per-task
        lookup, so placement matches :meth:`assign`), and the task parcels
        travelling to the same destination coalesce into one bulk message.
        Returns the treetures in task order.
        """
        runtime = self.runtime
        treetures = [Treeture(runtime.engine, task.name) for task in tasks]
        runtime.engine.spawn(
            self._assign_batch_process(list(tasks), treetures, origin)
        )
        return treetures

    # -- ASSIGN_TO_NODE ------------------------------------------------------------

    def _assign_process(
        self, task: TaskSpec, treeture: Treeture, origin: int
    ) -> Generator:
        runtime = self.runtime
        cfg = runtime.config
        variant = runtime.policy.pick_variant(task, runtime)

        lookup: dict[DataItem, list[tuple[Region, int]]] = {}
        if task.accessed_items():
            lookup = yield from self._locate_requirements(task, origin)
        target = self._choose_target(task, lookup, origin)

        job = runtime.job_context
        if job is not None:
            job.on_dispatch(remote=target != origin)
        if target != origin:
            runtime.metrics.incr("sched.remote_dispatch")
            # closure serialization at the origin, parcel decode at the
            # target — the per-remote-task CPU cost of the prototype
            yield runtime.process(origin).node.execute(
                cfg.remote_task_cpu_overhead
            )
            yield runtime.network.send(origin, target, cfg.task_message_bytes)
            # the target can fail or start draining while the parcel is on
            # the wire; land at the process dispatch would pick *now*
            target = runtime._redirect_if_failed(target)
            yield runtime.process(target).node.execute(
                cfg.remote_task_cpu_overhead
            )
            self._maybe_prefetch(task, target, variant, lookup)
            inner = self._remote_treeture(task, target, origin, treeture)
            runtime.process(target).enqueue(task, inner, variant)
        else:
            runtime.metrics.incr("sched.local_dispatch")
            self._maybe_prefetch(task, target, variant, lookup)
            runtime.process(target).enqueue(task, treeture, variant)

    def _assign_batch_process(
        self, tasks: list[TaskSpec], treetures: list[Treeture], origin: int
    ) -> Generator:
        runtime = self.runtime
        index = runtime.index
        resolve = (
            index.lookup_cached
            if runtime.config.index_caching
            else index.lookup
        )
        # one charged lookup per item over the union of sibling regions
        union: dict[DataItem, Region] = {}
        order: list[DataItem] = []
        for task in tasks:
            for item in task.accessed_items_ordered():
                region = task.accessed_region(item)
                if item not in union:
                    union[item] = region
                    order.append(item)
                else:
                    union[item] = union[item].union(region)
        shared: dict[DataItem, list[tuple[Region, int]]] = {}
        for item in order:
            mapping, _unresolved = yield from resolve(
                item, union[item], origin
            )
            shared[item] = mapping
        # place each sibling from its clip of the shared mapping, then
        # group the dispatches by destination.  Siblings of one split
        # frequently access the *same* region of shared items (stencil
        # readback planes, TPC's kd-tree), so clips are memoized on the
        # (item, interned-region-id) pair — repeat clips are one dict hit
        clip_memo: dict[tuple[int, int], list[tuple[Region, int]]] = {}
        clip_reuses = 0
        groups: dict[int, list] = {}
        for task, treeture in zip(tasks, treetures):
            variant = runtime.policy.pick_variant(task, runtime)
            lookup: dict[DataItem, list[tuple[Region, int]]] = {}
            for item in task.accessed_items_ordered():
                region = task.accessed_region(item)
                if region._rid is None:
                    region = region.interned()
                memo_key = (id(item), region._rid)
                pieces = clip_memo.get(memo_key)
                if pieces is None:
                    pieces = []
                    for part, owner in shared.get(item, ()):
                        overlap = part.intersect(region)
                        if not overlap.is_empty():
                            pieces.append((overlap, owner))
                    clip_memo[memo_key] = pieces
                else:
                    clip_reuses += 1
                lookup[item] = pieces
            target = self._choose_target(task, lookup, origin)
            groups.setdefault(target, []).append(
                (task, treeture, variant, lookup)
            )
        if clip_reuses:
            runtime.metrics.incr("comms.batch_clip_reuses", clip_reuses)
        dispatchers = [
            runtime.engine.spawn(
                self._dispatch_group(target, groups[target], origin)
            )
            for target in sorted(groups)
        ]
        if dispatchers:
            yield runtime.engine.all_of(dispatchers)

    def _dispatch_group(
        self, target: int, entries: list, origin: int
    ) -> Generator:
        """Ship one batch's tasks bound for one destination: the parcels
        coalesce into a single bulk message, charged once on the NIC."""
        runtime = self.runtime
        cfg = runtime.config
        job = runtime.job_context
        if job is not None:
            for _ in entries:
                job.on_dispatch(remote=target != origin)
        if target != origin:
            runtime.metrics.incr("sched.remote_dispatch", len(entries))
            runtime.metrics.incr("comms.batched_dispatches")
            runtime.metrics.incr("comms.batched_tasks", len(entries))
            # store-and-forward: every closure serializes before the bulk
            # parcel leaves, and the receiver's progress thread decodes
            # (and enqueues) the constituents one by one — per-task CPU
            # costs are unchanged, only the wire messages merge
            for _ in entries:
                yield runtime.process(origin).node.execute(
                    cfg.remote_task_cpu_overhead
                )
            yield runtime.network.send_bulk(
                origin, target, [cfg.task_message_bytes] * len(entries)
            )
            # the destination may have failed or begun draining while the
            # bulk parcel travelled; the whole batch lands at its stand-in
            target = runtime._redirect_if_failed(target)
            for task, treeture, variant, lookup in entries:
                yield runtime.process(target).node.execute(
                    cfg.remote_task_cpu_overhead
                )
                self._maybe_prefetch(task, target, variant, lookup)
                inner = self._remote_treeture(task, target, origin, treeture)
                runtime.process(target).enqueue(task, inner, variant)
        else:
            for task, treeture, variant, lookup in entries:
                runtime.metrics.incr("sched.local_dispatch")
                self._maybe_prefetch(task, target, variant, lookup)
                runtime.process(target).enqueue(task, treeture, variant)

    def _choose_target(
        self,
        task: TaskSpec,
        lookup: dict[DataItem, list[tuple[Region, int]]],
        origin: int,
    ) -> int:
        """Algorithm 2's placement cascade over an already-charged lookup."""
        runtime = self.runtime
        # a policy holding an offline plan may pin this task; the pin wins
        # whenever it sits inside the cascade tier that would fire anyway,
        # so a plan can steer ties without weakening the coverage rules
        preferred: int | None = None
        preferred_fn = getattr(runtime.policy, "preferred_target", None)
        if preferred_fn is not None:
            preferred = preferred_fn(task)
            if preferred is not None and not (
                0 <= preferred < runtime.num_processes
            ):
                preferred = None
        target: int | None = None
        if lookup:
            # per-item owner shares are built once and reused by both
            # coverage passes (Algorithm 2 lines 4 and 7)
            shares = {
                item: self._owner_shares(pieces)
                for item, pieces in lookup.items()
            }
            target = self._covering_all(task, shares, preferred)
            if target is None:
                target = self._covering_writes(task, shares, preferred)
        if target is None:
            if preferred is not None:
                target = preferred
            else:
                ctx = PlacementContext(runtime, origin, lookup)
                target = runtime.policy.pick_target(task, ctx)
        if not (0 <= target < runtime.num_processes):
            raise ValueError(
                f"policy chose invalid target {target} for {task.name!r}"
            )
        return runtime._redirect_if_failed(target)

    def _remote_treeture(
        self, task: TaskSpec, target: int, origin: int, treeture: Treeture
    ) -> Treeture:
        """Inner treeture whose completion travels back as a notification."""
        runtime = self.runtime
        inner = Treeture(runtime.engine, task.name)

        def forward(value: Any) -> None:
            notify = runtime.network.send(
                target, origin, runtime.config.completion_message_bytes
            )
            notify.add_callback(lambda _at: treeture.complete(value))

        inner.then(forward)
        return inner

    def _maybe_prefetch(
        self,
        task: TaskSpec,
        target: int,
        variant: str,
        lookup: dict[DataItem, list[tuple[Region, int]]],
    ) -> None:
        """Kick off replica prefetch at the target for a leaf task.

        Reuses the placement lookup, so no extra index traffic; split
        tasks are skipped — their children run elsewhere.
        """
        runtime = self.runtime
        if not runtime.config.replica_prefetch or variant == "split":
            return
        if not lookup:
            return
        runtime.process(target).data_manager.prefetch_for_task(task, lookup)

    # -- coverage from one charged lookup -----------------------------------------------

    def _locate_requirements(
        self, task: TaskSpec, origin: int
    ) -> Generator:
        index = self.runtime.index
        resolve = (
            index.lookup_cached
            if self.runtime.config.index_caching
            else index.lookup
        )
        lookup: dict[DataItem, list[tuple[Region, int]]] = {}
        for item in task.accessed_items_ordered():
            region = task.accessed_region(item)
            mapping, _unresolved = yield from resolve(item, region, origin)
            lookup[item] = mapping
        return lookup

    @staticmethod
    def _owner_shares(
        pieces: list[tuple[Region, int]]
    ) -> dict[int, Region]:
        """Union of looked-up parts per owning process, in one pass."""
        shares: dict[int, Region] = {}
        for part, owner in pieces:
            current = shares.get(owner)
            shares[owner] = part if current is None else current.union(part)
        return shares

    def _covering_all(
        self,
        task: TaskSpec,
        shares: dict[DataItem, dict[int, Region]],
        preferred: int | None = None,
    ) -> int | None:
        """Algorithm 2 line 4: a process covering every requirement."""
        return self._covering(task, shares, writes_only=False, preferred=preferred)

    def _covering_writes(
        self,
        task: TaskSpec,
        shares: dict[DataItem, dict[int, Region]],
        preferred: int | None = None,
    ) -> int | None:
        """Algorithm 2 line 7: a process covering all write requirements."""
        if not task.writes:
            return None
        return self._covering(task, shares, writes_only=True, preferred=preferred)

    def _covering(
        self,
        task: TaskSpec,
        shares: dict[DataItem, dict[int, Region]],
        writes_only: bool,
        preferred: int | None = None,
    ) -> int | None:
        candidates: set[int] | None = None
        for item in task.accessed_items_ordered():
            needed = (
                task.write_region(item)
                if writes_only
                else task.accessed_region(item)
            )
            if needed.is_empty():
                continue
            covering = {
                pid
                for pid, share in shares.get(item, {}).items()
                if share.covers(needed)
            }
            if candidates is None:
                candidates = covering
            else:
                candidates &= covering
            if not candidates:
                return None
        if not candidates:
            return None
        if preferred is not None and preferred in candidates:
            return preferred
        return min(candidates)
