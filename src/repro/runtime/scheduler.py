"""Inter-process task scheduling (paper §3.2, Algorithm 2).

``assign`` implements ``ASSIGN_TO_NODE``: the policy picks the variant,
then the task is dispatched to

1. a process whose owned regions cover *all* data requirements, else
2. a process covering all *write* requirements, else
3. wherever the scheduling policy chooses.

Coverage is derived from one charged hierarchical-index lookup over the
task's accessed regions (Algorithm 1), and the resulting ownership map is
handed to the policy so its placement decision reuses the same
information.  Remote dispatch ships the task closure as a network message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.runtime.policies import PlacementContext
from repro.runtime.tasks import TaskSpec, Treeture

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


class Scheduler:
    """Algorithm 2 plus the plumbing to move tasks between processes."""

    def __init__(self, runtime: "AllScaleRuntime") -> None:
        self.runtime = runtime

    # -- public entry -------------------------------------------------------------

    def assign(
        self,
        task: TaskSpec,
        origin: int = 0,
        after: list[Treeture] | None = None,
    ) -> Treeture:
        """Schedule ``task``; returns its treeture immediately.

        ``after`` lists treetures that must complete before the task is
        even placed — fine-grained dependencies without a global barrier
        (the AllScale API's treeture-composition style).
        """
        runtime = self.runtime
        treeture = Treeture(runtime.engine, task.name)
        if after:
            gate = runtime.engine.all_of([t.future for t in after])

            def launch(_values) -> None:
                runtime.engine.spawn(
                    self._assign_process(task, treeture, origin)
                )

            gate.add_callback(launch)
        else:
            runtime.engine.spawn(self._assign_process(task, treeture, origin))
        return treeture

    # -- ASSIGN_TO_NODE ------------------------------------------------------------

    def _assign_process(
        self, task: TaskSpec, treeture: Treeture, origin: int
    ) -> Generator:
        runtime = self.runtime
        cfg = runtime.config
        variant = runtime.policy.pick_variant(task, runtime)

        lookup: dict[DataItem, list[tuple[Region, int]]] = {}
        target: int | None = None
        if task.accessed_items():
            lookup = yield from self._locate_requirements(task, origin)
            # per-item owner shares are built once and reused by both
            # coverage passes (Algorithm 2 lines 4 and 7)
            shares = {
                item: self._owner_shares(pieces)
                for item, pieces in lookup.items()
            }
            target = self._covering_all(task, shares)
            if target is None:
                target = self._covering_writes(task, shares)
        if target is None:
            ctx = PlacementContext(runtime, origin, lookup)
            target = runtime.policy.pick_target(task, ctx)
        if not (0 <= target < runtime.num_processes):
            raise ValueError(
                f"policy chose invalid target {target} for {task.name!r}"
            )
        target = runtime._redirect_if_failed(target)

        if target != origin:
            runtime.metrics.incr("sched.remote_dispatch")
            # closure serialization at the origin, parcel decode at the
            # target — the per-remote-task CPU cost of the prototype
            yield runtime.process(origin).node.execute(
                cfg.remote_task_cpu_overhead
            )
            yield runtime.network.send(origin, target, cfg.task_message_bytes)
            yield runtime.process(target).node.execute(
                cfg.remote_task_cpu_overhead
            )
            # completion travels back to the origin as a notification
            inner = Treeture(runtime.engine, task.name)

            def forward(value: Any) -> None:
                notify = runtime.network.send(
                    target, origin, cfg.completion_message_bytes
                )
                notify.add_callback(lambda _at: treeture.complete(value))

            inner.then(forward)
            runtime.process(target).enqueue(task, inner, variant)
        else:
            runtime.metrics.incr("sched.local_dispatch")
            runtime.process(target).enqueue(task, treeture, variant)

    # -- coverage from one charged lookup -----------------------------------------------

    def _locate_requirements(
        self, task: TaskSpec, origin: int
    ) -> Generator:
        index = self.runtime.index
        resolve = (
            index.lookup_cached
            if self.runtime.config.index_caching
            else index.lookup
        )
        lookup: dict[DataItem, list[tuple[Region, int]]] = {}
        for item in task.accessed_items_ordered():
            region = task.accessed_region(item)
            mapping, _unresolved = yield from resolve(item, region, origin)
            lookup[item] = mapping
        return lookup

    @staticmethod
    def _owner_shares(
        pieces: list[tuple[Region, int]]
    ) -> dict[int, Region]:
        """Union of looked-up parts per owning process, in one pass."""
        shares: dict[int, Region] = {}
        for part, owner in pieces:
            current = shares.get(owner)
            shares[owner] = part if current is None else current.union(part)
        return shares

    def _covering_all(
        self, task: TaskSpec, shares: dict[DataItem, dict[int, Region]]
    ) -> int | None:
        """Algorithm 2 line 4: a process covering every requirement."""
        return self._covering(task, shares, writes_only=False)

    def _covering_writes(
        self, task: TaskSpec, shares: dict[DataItem, dict[int, Region]]
    ) -> int | None:
        """Algorithm 2 line 7: a process covering all write requirements."""
        if not task.writes:
            return None
        return self._covering(task, shares, writes_only=True)

    def _covering(
        self,
        task: TaskSpec,
        shares: dict[DataItem, dict[int, Region]],
        writes_only: bool,
    ) -> int | None:
        candidates: set[int] | None = None
        for item in task.accessed_items_ordered():
            needed = (
                task.write_region(item)
                if writes_only
                else task.accessed_region(item)
            )
            if needed.is_empty():
                continue
            covering = {
                pid
                for pid, share in shares.get(item, {}).items()
                if share.covers(needed)
            }
            if candidates is None:
                candidates = covering
            else:
                candidates &= covering
            if not candidates:
                return None
        if not candidates:
            return None
        return min(candidates)
