"""Hierarchical, distributed data storage index (paper Fig. 5, Algorithm 1).

All runtime processes are organized in a binary hierarchy.  Level 1 is the
leaf level (one leaf per process, covering the regions of its locally
*owned* fragments); the node at level ``l`` rooted at process ``i`` covers
processes ``[i, i + 2**(l-1))`` and is *hosted* by process ``i`` — "the
role of inner nodes is assumed by the left child".  Each process therefore
maintains up to ``O(log₂ P)`` regions per data item.

:meth:`HierarchicalIndex.lookup` implements Algorithm 1 (region location
resolution) as a simulation process: every RESOLVE step executed on a
process other than its caller is charged as a control-message round trip
on the simulated network, so lookup latency scales with hop count exactly
as the distributed implementation's would.

One deliberate refinement over the paper's pseudocode: descending into a
child passes ``r ∩ r_subtree`` rather than the full remainder ``r`` —
otherwise a child that cannot resolve everything would escalate back to
the parent that just called it.  The subtraction on the paper's lines
20/25 indicates this is the intended reading.

Index *maintenance* (``update_ownership``) recomputes the covered regions
along the leaf-to-root path whenever ownership changes, charging one
fire-and-forget control message per remote ancestor host.
"""

from __future__ import annotations

from typing import Generator

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.sim.network import Network
from repro.verify import monitor as _verify


class HierarchicalIndex:
    """Distributed index over process-owned regions of data items."""

    def __init__(
        self,
        network: Network,
        num_processes: int,
        control_message_bytes: int = 96,
    ) -> None:
        if num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        self.network = network
        self.num_processes = num_processes
        self.control_message_bytes = control_message_bytes
        # number of hierarchy levels: leaves at 1, root at `levels`
        self.levels = 1
        while (1 << (self.levels - 1)) < num_processes:
            self.levels += 1
        # (item, level, root_process) -> covered region
        self._cover: dict[tuple[DataItem, int, int], Region] = {}
        self._items: set[DataItem] = set()
        self.lookups = 0
        self.lookup_hops = 0
        self.update_messages = 0
        # per-item ownership version; bumped on every update so origin-side
        # lookup caches can validate their entries cheaply
        self._version: dict[DataItem, int] = {}
        # (origin, item) -> {"version", "pieces": [(region, pid)],
        #                    "resolved": Region, "checked": Region,
        #                    "fast": {rid -> (mapping, unresolved)}}
        # "fast" is the O(1) tier: repeated lookups of the *same interned*
        # region within one ownership epoch return their answer by integer
        # id, skipping the covers/intersect/difference chain entirely
        self._lookup_cache: dict[tuple[int, DataItem], dict] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: optional invariant sentinel, notified after each applied update
        #: (set by RuntimeSentinel.attach)
        self.sentinel = None

    # -- elastic membership -----------------------------------------------------------

    def grow(self, num_processes: int) -> None:
        """Extend the hierarchy to cover ``num_processes`` leaves.

        Joining processes own nothing yet, so every existing leaf (and
        therefore every existing ancestor on its path) keeps its cover;
        only *new root levels* appear, each covering exactly what the old
        root did.  Ownership versions are untouched — no leaf changed —
        so per-origin lookup caches stay valid: the newcomer's empty leaf
        cannot invalidate placement knowledge already learned.
        """
        if num_processes < self.num_processes:
            raise ValueError(
                f"index cannot shrink from {self.num_processes} to "
                f"{num_processes} processes (departures keep their leaves)"
            )
        if num_processes == self.num_processes:
            return
        old_levels = self.levels
        levels = 1
        while (1 << (levels - 1)) < num_processes:
            levels += 1
        if levels > old_levels:
            for item in self._items:
                base = self._cover.get((item, old_levels, 0))
                if base is None:
                    continue
                # new root levels are all rooted at 0; the right child of
                # each is entirely made of (empty) newcomers, so each new
                # root covers exactly the old root's region
                for level in range(old_levels + 1, levels + 1):
                    self._cover[(item, level, 0)] = base
        self.num_processes = num_processes
        self.levels = levels

    # -- hierarchy geometry ---------------------------------------------------------

    def node_root(self, level: int, process: int) -> int:
        """Root process of the level-``level`` node containing ``process``."""
        span = 1 << (level - 1)
        return process - (process % span)

    def children_of(self, level: int, root: int) -> tuple[int, int]:
        """Roots of the two level-``level - 1`` children of node (level, root)."""
        half = 1 << (level - 2)
        return root, root + half

    def host_of(self, level: int, root: int) -> int:
        """Process hosting the hierarchy node — its leftmost descendant."""
        return root

    # -- covered-region bookkeeping ----------------------------------------------------

    def register_item(self, item: DataItem) -> None:
        self._items.add(item)

    def covered(self, item: DataItem, level: int, root: int) -> Region:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("own", item.name))
        region = self._cover.get((item, level, root))
        return region if region is not None else item.empty_region()

    def owned_region(self, item: DataItem, process: int) -> Region:
        return self.covered(item, 1, process)

    def ownership_version(self, item: DataItem) -> int:
        """Monotone per-item ownership epoch (bumped on every applied
        update); replica-cache entries and lookup caches tag with it."""
        return self._version.get(item, 0)

    def update_ownership(
        self, item: DataItem, process: int, new_region: Region
    ) -> None:
        """Set the leaf region of ``process`` and refresh its ancestors.

        Charges one control message per ancestor hosted on a different
        process (fire-and-forget; maintenance does not block the caller).
        """
        if item not in self._items:
            raise KeyError(f"item {item.name!r} not registered with the index")
        old = self.covered(item, 1, process)
        # store the canonical representative: every later lookup combining
        # against this cover then hits the kernel's memo-cache by identity
        new_region = new_region.interned()
        if new_region is old or new_region.same_elements(old):
            # no-op update: the stored leaf already holds exactly this
            # region, so ancestors cannot change either.  Skip the version
            # bump (which would wipe every origin's locality cache) and the
            # ancestor maintenance messages.
            return
        self._version[item] = self._version.get(item, 0) + 1
        self._cover[(item, 1, process)] = new_region
        # pure growth is the common case (first-touch allocation, imports);
        # propagating only the delta keeps ancestor updates cheap
        added = new_region.difference(old)
        grew_only = old.difference(new_region).is_empty()
        for level in range(2, self.levels + 1):
            root = self.node_root(level, process)
            if grew_only:
                if not added.is_empty():
                    self._cover[(item, level, root)] = self.covered(
                        item, level, root
                    ).union(added)
            else:
                left, right = self.children_of(level, root)
                merged = self.covered(item, level - 1, left)
                if right < self.num_processes:
                    merged = merged.union(self.covered(item, level - 1, right))
                self._cover[(item, level, root)] = merged
            host = self.host_of(level, root)
            if host != process:
                self.update_messages += 1
                self.network.send(process, host, self.control_message_bytes)
        monitor = _verify.current
        if monitor is not None:
            # publish the new covers: lookups that observe them (via
            # ``covered``) order after this update
            monitor.sync_release(("own", item.name))
        if self.sentinel is not None:
            self.sentinel.on_ownership_update(item, process, new_region)

    # -- Algorithm 1: region location resolution ------------------------------------------

    def lookup(
        self, item: DataItem, region: Region, origin: int
    ) -> Generator:
        """Locate ``region`` of ``item`` starting from process ``origin``.

        A simulation process (drive with ``engine.spawn`` / ``yield from``)
        returning ``(mapping, unresolved)`` where ``mapping`` is a list of
        ``(region_part, process)`` pairs and ``unresolved`` is the part of
        the request no process owns (i.e. uninitialized data).
        """
        self.lookups += 1
        if region.is_empty():
            return [], region
        mapping: list[tuple[Region, int]] = []

        # leaf step: the origin's own share (Algorithm 1, lines 8-14)
        part, remaining = yield from self._resolve(
            item, region, 1, origin, exclude_child=None
        )
        mapping.extend(part)

        # escalation: consult ever larger enclosing subtrees (lines 32-35);
        # each parent only needs its child not yet examined
        caller = origin
        prev_root = origin
        level = 1
        while not remaining.is_empty() and level < self.levels:
            level += 1
            root = self.node_root(level, origin)
            host = self.host_of(level, root)
            if host != caller:
                self.lookup_hops += 1
                yield self.network.send(
                    caller, host, self.control_message_bytes
                )
                caller = host
            part, remaining = yield from self._resolve(
                item, remaining, level, root, exclude_child=prev_root
            )
            mapping.extend(part)
            prev_root = root
        # the collected mapping travels back to the origin
        if caller != origin:
            self.lookup_hops += 1
            yield self.network.send(caller, origin, self.control_message_bytes)
        return mapping, remaining

    def _resolve(
        self,
        item: DataItem,
        region: Region,
        level: int,
        root: int,
        exclude_child: int | None,
    ) -> Generator:
        """RESOLVE(d, r, l) of Algorithm 1, downward direction only."""
        mapping: list[tuple[Region, int]] = []
        if region.is_empty():
            return mapping, region
        if level == 1:
            local = self.covered(item, 1, root)
            found = region.intersect(local)
            if not found.is_empty():
                mapping.append((found, root))
                region = region.difference(found)
            return mapping, region
        host = self.host_of(level, root)
        descents: list[tuple[int, Region]] = []
        for child_root in self.children_of(level, root):
            if child_root == exclude_child or child_root >= self.num_processes:
                continue
            child_cover = self.covered(item, level - 1, child_root)
            overlap = region.intersect(child_cover)
            if overlap.is_empty():
                continue
            descents.append((child_root, overlap))
            region = region.difference(overlap)
        if len(descents) == 1:
            child_root, overlap = descents[0]
            part = yield from self._descend(item, overlap, level, host, child_root)
            mapping.extend(part)
        elif descents:
            # both children hold parts of the request: a distributed
            # implementation sends both RESOLVE messages at once and
            # joins the replies, so the sub-resolutions run concurrently
            # (hop accounting is identical either way; child covers are
            # disjoint, so the answers cannot overlap)
            engine = self.network.engine
            parts = yield engine.all_of(
                [
                    engine.spawn(
                        self._descend(item, overlap, level, host, child_root)
                    )
                    for child_root, overlap in descents
                ]
            )
            for part in parts:
                mapping.extend(part)
        return mapping, region

    def _descend(
        self, item: DataItem, overlap: Region, level: int, host: int, child_root: int
    ) -> Generator:
        """One charged round trip into a child node's sub-resolution."""
        child_host = self.host_of(level - 1, child_root)
        if child_host != host:
            self.lookup_hops += 1
            yield self.network.send(host, child_host, self.control_message_bytes)
        part, _ = yield from self._resolve(
            item, overlap, level - 1, child_root, exclude_child=None
        )
        if child_host != host:
            self.lookup_hops += 1
            yield self.network.send(child_host, host, self.control_message_bytes)
        return part

    # -- origin-side lookup caching (a §6 "closing the gap" optimization) -----------

    def lookup_cached(
        self, item: DataItem, region: Region, origin: int
    ) -> Generator:
        """Like :meth:`lookup` but with a per-origin *locality cache*.

        Every miss teaches the origin the placement of the looked-up
        region; subsequent lookups covered by accumulated knowledge are
        served locally at zero message cost.  Entries are validated
        against the item's ownership version (bumped on every update), so
        stale placement is never served — the optimization the paper's §6
        "closing the performance gap" effort points at for lookup-bound
        workloads like TPC.
        """
        version = self._version.get(item, 0)
        if region._rid is None:
            region = region.interned()
        key = (origin, item)
        entry = self._lookup_cache.get(key)
        if entry is not None and entry["version"] != version:
            entry = None  # ownership changed: forget everything learned
        if entry is not None:
            fast = entry["fast"].get(region._rid)
            if fast is not None:
                # O(1) epoch-validated hit on the interned region's id
                self.cache_hits += 1
                self.lookups += 1
                mapping, unresolved = fast
                return list(mapping), unresolved
            if entry["checked"].covers(region):
                self.cache_hits += 1
                self.lookups += 1
                mapping = []
                for piece, pid in entry["pieces"]:
                    overlap = piece.intersect(region)
                    if not overlap.is_empty():
                        mapping.append((overlap, pid))
                unresolved = region.difference(entry["resolved"])
                entry["fast"][region._rid] = (mapping, unresolved)
                return list(mapping), unresolved
        self.cache_misses += 1
        mapping, unresolved = yield from self.lookup(item, region, origin)
        # re-validate: ownership may have changed *during* the lookup, and
        # a concurrent miss from this origin may have (re)built the entry —
        # re-fetch it so concurrent learners accumulate instead of clobber
        if self._version.get(item, 0) == version:
            entry = self._lookup_cache.get(key)
            if entry is None or entry["version"] != version:
                entry = {
                    "version": version,
                    "pieces": [],
                    "resolved": item.empty_region(),
                    "checked": item.empty_region(),
                    "fast": {},
                }
                self._lookup_cache[key] = entry
            for piece, pid in mapping:
                fresh = piece.difference(entry["resolved"])
                if not fresh.is_empty():
                    entry["pieces"].append((fresh, pid))
                    entry["resolved"] = entry["resolved"].union(fresh)
            entry["checked"] = entry["checked"].union(region)
            entry["fast"][region._rid] = (list(mapping), unresolved)
        return mapping, unresolved

    # -- convenience -----------------------------------------------------------------------

    def covering_process(self, item: DataItem, region: Region) -> int | None:
        """Process whose owned region covers all of ``region``, if any.

        Pure state inspection used by tests; the scheduler derives coverage
        from charged :meth:`lookup` results instead.
        """
        if region.is_empty():
            return None
        for process in range(self.num_processes):
            if self.owned_region(item, process).covers(region):
                return process
        return None
