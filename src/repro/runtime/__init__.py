"""The AllScale runtime system (paper §3.2), on the simulated cluster.

This is the *implementation level* of the application model: one runtime
process per cluster node, each owning

* a **data item manager** holding fragments, tracking owned regions and
  read replicas, and performing resize/import/export operations
  (:mod:`repro.runtime.data_manager`);
* a **lock table** for region-granular read/write locks
  (:mod:`repro.runtime.locks`);
* its share of the **hierarchical distributed storage index** of Fig. 5,
  with the region location resolution procedure of Algorithm 1
  (:mod:`repro.runtime.index`);
* a **task queue and worker pool** executing tasks on the simulated cores
  (:mod:`repro.runtime.process`).

Task distribution follows Algorithm 2 (:mod:`repro.runtime.scheduler`)
under a pluggable scheduling policy (:mod:`repro.runtime.policies`).
Monitoring (:mod:`repro.runtime.monitoring`), checkpoint/restart
(:mod:`repro.runtime.resilience`) and data-migration-driven load balancing
(:mod:`repro.runtime.balancer`) are the higher-level services the model
enables.

Entry point: :class:`repro.runtime.runtime.AllScaleRuntime`.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.tasks import TaskSpec, Treeture, TaskExecutionContext
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.policies import (
    DataAwarePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)

__all__ = [
    "RuntimeConfig",
    "TaskSpec",
    "Treeture",
    "TaskExecutionContext",
    "AllScaleRuntime",
    "SchedulingPolicy",
    "DataAwarePolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
]
