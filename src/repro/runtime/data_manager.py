"""The data item manager (paper §3.2).

One manager per runtime process.  It maintains the process's fragments,
tracks which region of each item the process *owns* (the authoritative
copy, registered in the hierarchical index) versus merely *replicates*
(read-only halo data), and implements the data movement a task's
requirements demand before it may start:

* **allocate** — the *(init)* rule: first-touch allocation of data present
  nowhere;
* **migrate in** — the *(migrate)* rule: ownership (and the bytes) move
  from another process; blocked while the source holds any lock on the
  region, exactly as the formal guard requires;
* **replicate in** — the *(replicate)* rule: a read-only copy is fetched;
  blocked only by the source's *write* locks;
* **replica invalidation** — enforcing the start rule's ``D ∩ Dw = ∅``
  premise (and thereby the exclusive-writes property): before a write
  executes, all remote replicas of the written region are dropped.

All message sizes and bookkeeping costs go through the simulated network
and node cores, so data management overhead shows up in benchmark time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.runtime.tasks import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.process import RuntimeProcess


class DataItemManager:
    """Fragments, ownership, and replicas of one address space."""

    def __init__(self, process: "RuntimeProcess") -> None:
        self.process = process
        self.fragments: dict[DataItem, Fragment] = {}
        self.owned: dict[DataItem, Region] = {}
        # regions whose ownership already arrived here but whose bytes are
        # still on the wire; tasks must not touch them until they land
        self._in_flight: dict[DataItem, Region] = {}
        self._in_flight_waiters: list = []

    # -- basic views --------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self.process.pid

    def fragment(self, item: DataItem) -> Fragment:
        fragment = self.fragments.get(item)
        if fragment is None:
            fragment = item.new_fragment(
                item.empty_region(),
                functional=self.process.runtime.config.functional,
            )
            self.fragments[item] = fragment
        return fragment

    def owned_region(self, item: DataItem) -> Region:
        return self.owned.get(item, item.empty_region())

    def present_region(self, item: DataItem) -> Region:
        return self.fragment(item).region

    def replica_region(self, item: DataItem) -> Region:
        return self.present_region(item).difference(self.owned_region(item))

    def in_flight_region(self, item: DataItem) -> Region:
        region = self._in_flight.get(item)
        return region if region is not None else item.empty_region()

    def _mark_in_flight(self, item: DataItem, region: Region) -> None:
        self._in_flight[item] = self.in_flight_region(item).union(region)

    def _clear_in_flight(self, item: DataItem, region: Region) -> None:
        remaining = self.in_flight_region(item).difference(region)
        if remaining.is_empty():
            self._in_flight.pop(item, None)
        else:
            self._in_flight[item] = remaining
        waiters, self._in_flight_waiters = self._in_flight_waiters, []
        for waiter in waiters:
            waiter.complete(None)

    def _in_flight_change(self):
        future = self.process.runtime.engine.future()
        self._in_flight_waiters.append(future)
        return future

    # -- ownership changes (synchronous bookkeeping) --------------------------------

    def allocate(self, item: DataItem, region: Region) -> None:
        """First-touch allocation — the *(init)* transition.

        Atomic claim: whatever became owned anywhere since the caller's
        lookup is excluded synchronously (the index root cover is the
        global ownership union, maintained without yields), so concurrent
        first touches can never create overlapping ownership.
        """
        if region.is_empty():
            return
        runtime = self.process.runtime
        index = runtime.index
        global_cover = index.covered(item, index.levels, 0).difference(
            self.owned_region(item)
        )
        region = region.difference(global_cover)
        if region.is_empty():
            return
        fragment = self.fragment(item)
        grown = fragment.region.union(region)
        added_bytes = item.region_bytes(region.difference(fragment.region))
        # charge the memory budget *before* touching the fragment: a
        # MemoryExhaustedError must not leave present-but-unowned bytes
        self.process.node.allocate(added_bytes)
        fragment.resize(grown)
        self.owned[item] = self.owned_region(item).union(region)
        # a local replica of an unowned region (e.g. orphaned by a node
        # failure) may be claimed here: it is now owned, not replicated
        runtime.unregister_replica(item, self.pid, region)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        runtime.metrics.incr("dm.allocations")
        runtime.metrics.incr("dm.allocated_bytes", added_bytes)

    def export_owned(self, item: DataItem, region: Region) -> FragmentPayload:
        """Cut owned data out for a migration; caller charges the transfer."""
        runtime = self.process.runtime
        part = self.owned_region(item).intersect(region)
        fragment = self.fragment(item)
        payload = fragment.extract(part)
        fragment.resize(fragment.region.difference(part))
        self.process.node.free(item.region_bytes(part))
        self.owned[item] = self.owned_region(item).difference(part)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_export(self.pid, item, payload)
        runtime.metrics.incr("dm.exports")
        return payload

    def import_owned(self, item: DataItem, payload: FragmentPayload) -> None:
        """Splice migrated-in data; ownership follows the data."""
        runtime = self.process.runtime
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_import(self.pid, item, payload)
        fragment = self.fragment(item)
        added = payload.region.difference(fragment.region)
        self.process.node.allocate(item.region_bytes(added))
        fragment.insert(payload)
        self.owned[item] = self.owned_region(item).union(payload.region)
        # data this process previously held as a replica is now owned here
        runtime.unregister_replica(item, self.pid, payload.region)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        runtime.metrics.incr("dm.imports")

    def insert_replica(self, item: DataItem, payload: FragmentPayload) -> None:
        """Splice replicated (read-only) data; ownership unchanged."""
        runtime = self.process.runtime
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_import(self.pid, item, payload)
        fragment = self.fragment(item)
        added = payload.region.difference(fragment.region)
        self.process.node.allocate(item.region_bytes(added))
        fragment.insert(payload)
        # anything that became locally *owned* while the payload was in
        # transit (a concurrent write staging here) is not a replica
        replicated = payload.region.difference(self.owned_region(item))
        if not replicated.is_empty():
            runtime.register_replica(item, self.pid, replicated)
        runtime.metrics.incr("dm.replicas_fetched")

    def drop_replica(self, item: DataItem, region: Region) -> None:
        """Invalidate local replicated data (never touches owned data)."""
        victim = self.replica_region(item).intersect(region)
        if victim.is_empty():
            return
        fragment = self.fragment(item)
        fragment.resize(fragment.region.difference(victim))
        self.process.node.free(item.region_bytes(victim))
        self.process.runtime.unregister_replica(item, self.pid, victim)
        self.process.runtime.metrics.incr("dm.replicas_dropped")

    # -- requirement satisfaction (simulation processes) --------------------------------

    def requirements_hold(self, task: TaskSpec) -> bool:
        """Do the *start* rule's data premises hold here, right now?

        Synchronous re-verification run *after* lock acquisition: between
        :meth:`ensure_for_task` completing and the locks being granted,
        other simulation processes run — a remote task may re-replicate
        part of the write set, or a concurrent migration may steal
        ownership staged here.  Both races are invisible to the (already
        satisfied) staging pass; catching them under lock and restaging
        closes them.  Checks only — no yields, no side effects — so a
        failed verification holds the just-acquired locks for zero
        simulated time.
        """
        runtime = self.process.runtime
        for item in task.accessed_items_ordered():
            write = task.write_region(item)
            if not write.is_empty():
                if not self.owned_region(item).covers(write):
                    return False
                for pid, region in runtime.replica_holders(item).items():
                    if pid != self.pid and region.overlaps(write):
                        return False
            accessed = task.accessed_region(item)
            if not self.present_region(item).covers(accessed):
                return False
            if self.in_flight_region(item).overlaps(accessed):
                return False
        return True

    def ensure_for_task(self, task: TaskSpec) -> Generator:
        """Bring all data ``task`` requires into this address space.

        The write set ends up owned here exclusively; the read set is at
        least replicated here.  Drives migrations, replications, replica
        invalidations and allocations; completes when the *start* rule's
        data premises hold locally.
        """
        runtime = self.process.runtime
        for item in task.accessed_items_ordered():
            write = task.write_region(item)
            if not write.is_empty():
                yield from self._acquire_ownership(item, write, task=task)
                # exclusive writes: no replicas of the write set elsewhere
                yield from runtime.invalidate_replicas(item, write, self.pid)
            read = task.read_region(item)
            missing = read.difference(self.present_region(item))
            if not missing.is_empty():
                yield from self._fetch_replicas(item, missing, task=task)
            # data whose ownership arrived but whose bytes are still on
            # the wire is not usable yet
            accessed = task.accessed_region(item)
            while self.in_flight_region(item).overlaps(accessed):
                yield self._in_flight_change()

    def _acquire_ownership(
        self, item: DataItem, region: Region, task: object = None
    ) -> Generator:
        runtime = self.process.runtime
        cfg = runtime.config
        for _attempt in range(8):
            missing = region.difference(self.owned_region(item))
            if missing.is_empty():
                return
            # defer to older staging writers instead of stealing their
            # freshly migrated ownership back (livelock otherwise)
            while runtime.write_intent_blocked(item, missing, task):
                yield runtime.intent_change()
            missing = region.difference(self.owned_region(item))
            if missing.is_empty():
                return
            mapping, unresolved = yield from runtime.index.lookup(
                item, missing, self.pid
            )
            for part, owner in mapping:
                if owner == self.pid:
                    # owned locally but not recorded? (lost race) — re-check
                    continue
                yield from self._migrate_in(item, part, owner)
            if not unresolved.is_empty():
                # present nowhere: first-touch allocation (init rule).
                # Allocate at fragment granularity — the whole not-yet-
                # initialized part of this process's home block — so the
                # initialization phase produces one big fragment per
                # process instead of one sliver per task.
                grab = unresolved
                homes = runtime.home_map(item)
                if homes is not None:
                    top = runtime.index.covered(
                        item, runtime.index.levels, 0
                    )
                    uninitialized = homes[self.pid].difference(top)
                    grab = grab.union(uninitialized)
                yield self.process.node.execute(cfg.fragment_op_overhead)
                self.allocate(item, grab)
        missing = region.difference(self.owned_region(item))
        if not missing.is_empty():
            raise RuntimeError(
                f"process {self.pid} could not acquire ownership of "
                f"{missing.size()} write elements of {item.name!r} after "
                "repeated attempts (ownership thrashing?)"
            )

    def _migrate_in(self, item: DataItem, region: Region, src: int) -> Generator:
        """One migration transfer: request, wait for locks, move bytes.

        Ownership is handed over *atomically* at export time (before the
        bytes travel), so no element is ever owned by nobody — a window in
        which a concurrent first touch could re-allocate it.  The region
        is marked in flight at the destination until the payload lands;
        tasks and replica fetches wait on that marker.
        """
        runtime = self.process.runtime
        cfg = runtime.config
        network = runtime.network
        peer = runtime.process(src)
        yield network.send(self.pid, src, cfg.control_message_bytes)
        # (migrate) guard: no locks at the source on the moving region,
        # and the source must actually hold the bytes (not in flight)
        while peer.locks.any_locked(item, region):
            yield peer.locks.wait_for_change()
        while peer.data_manager.in_flight_region(item).overlaps(region):
            yield peer.data_manager._in_flight_change()
        part = peer.data_manager.owned_region(item).intersect(region)
        if part.is_empty():
            return  # someone else migrated it away meanwhile
        yield peer.node.execute(cfg.fragment_op_overhead)
        payload = peer.data_manager.export_owned(item, part)
        # atomic handover: ownership (and the index) move now
        self.owned[item] = self.owned_region(item).union(payload.region)
        runtime.unregister_replica(item, self.pid, payload.region)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        self._mark_in_flight(item, payload.region)
        try:
            yield network.send(src, self.pid, max(1, payload.nbytes))
            yield self.process.node.execute(cfg.fragment_op_overhead)
            self._store_payload(item, payload)
        finally:
            self._clear_in_flight(item, payload.region)
        runtime.metrics.incr("dm.migrations")
        runtime.metrics.incr("dm.migrated_bytes", payload.nbytes)

    def _store_payload(self, item: DataItem, payload: FragmentPayload) -> None:
        """Splice arrived bytes into the fragment (ownership already here)."""
        runtime = self.process.runtime
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_import(self.pid, item, payload)
        fragment = self.fragment(item)
        added = payload.region.difference(fragment.region)
        self.process.node.allocate(item.region_bytes(added))
        fragment.insert(payload)
        runtime.metrics.incr("dm.imports")

    def _fetch_replicas(
        self, item: DataItem, missing: Region, task: object = None
    ) -> Generator:
        runtime = self.process.runtime
        cfg = runtime.config
        network = runtime.network
        for _attempt in range(5):
            missing = missing.difference(self.present_region(item))
            if missing.is_empty():
                return
            # a staging writer invalidates replicas of its write set as
            # fast as we can re-fetch them; wait out its reservation
            # rather than burning retry attempts against it
            while runtime.write_intent_blocked(item, missing, task):
                yield runtime.intent_change()
            missing = missing.difference(self.present_region(item))
            if missing.is_empty():
                return
            mapping, unresolved = yield from runtime.index.lookup(
                item, missing, self.pid
            )
            for part, owner in mapping:
                if owner == self.pid:
                    continue
                peer = runtime.process(owner)
                yield network.send(self.pid, owner, cfg.control_message_bytes)
                # (replicate) guard: no *write* locks at the source, and the
                # source's bytes must have physically arrived
                while peer.locks.write_locked(item, part):
                    yield peer.locks.wait_for_change()
                while peer.data_manager.in_flight_region(item).overlaps(part):
                    yield peer.data_manager._in_flight_change()
                # the data may have moved away while we waited; take what
                # is still there and retry for the rest
                part = part.intersect(
                    peer.data_manager.present_region(item)
                )
                if part.is_empty():
                    continue
                yield peer.node.execute(cfg.fragment_op_overhead)
                payload = peer.data_manager.fragment(item).extract(part)
                yield network.send(owner, self.pid, max(1, payload.nbytes))
                yield self.process.node.execute(cfg.fragment_op_overhead)
                self.insert_replica(item, payload)
                runtime.metrics.incr("dm.replicated_bytes", payload.nbytes)
            if not unresolved.is_empty():
                # reading data never written nor initialized: surface it as
                # a zero-initialized first touch.  allocate() claims
                # atomically; anything claimed elsewhere meanwhile is
                # re-fetched on the next attempt.
                yield self.process.node.execute(cfg.fragment_op_overhead)
                self.allocate(item, unresolved)
                runtime.metrics.incr("dm.uninitialized_reads")
        missing = missing.difference(self.present_region(item))
        if not missing.is_empty():
            raise RuntimeError(
                f"process {self.pid} could not materialize "
                f"{missing.size()} read elements of {item.name!r} after "
                "repeated attempts (ownership thrashing?)"
            )

    def __repr__(self) -> str:
        return (
            f"DataItemManager(pid={self.pid}, items={len(self.fragments)})"
        )
