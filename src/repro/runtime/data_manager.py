"""The data item manager (paper §3.2).

One manager per runtime process.  It maintains the process's fragments,
tracks which region of each item the process *owns* (the authoritative
copy, registered in the hierarchical index) versus merely *replicates*
(read-only halo data), and implements the data movement a task's
requirements demand before it may start:

* **allocate** — the *(init)* rule: first-touch allocation of data present
  nowhere;
* **migrate in** — the *(migrate)* rule: ownership (and the bytes) move
  from another process; blocked while the source holds any lock on the
  region, exactly as the formal guard requires;
* **replicate in** — the *(replicate)* rule: a read-only copy is fetched;
  blocked only by the source's *write* locks;
* **replica invalidation** — enforcing the start rule's ``D ∩ Dw = ∅``
  premise (and thereby the exclusive-writes property): before a write
  executes, all remote replicas of the written region are dropped.

All message sizes and bookkeeping costs go through the simulated network
and node cores, so data management overhead shows up in benchmark time.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator

from repro.items.base import DataItem, Fragment, FragmentPayload
from repro.regions.base import Region
from repro.runtime.tasks import TaskSpec
from repro.runtime.transfers import ReplicaCache, TransferPlan
from repro.verify import monitor as _verify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.process import RuntimeProcess

#: finished transfer plans kept per process for audits and property tests
PLAN_LOG_LIMIT = 128


class DataItemManager:
    """Fragments, ownership, and replicas of one address space."""

    def __init__(self, process: "RuntimeProcess") -> None:
        self.process = process
        self.fragments: dict[DataItem, Fragment] = {}
        self.owned: dict[DataItem, Region] = {}
        # regions whose ownership already arrived here but whose bytes are
        # still on the wire; tasks must not touch them until they land
        self._in_flight: dict[DataItem, Region] = {}
        self._in_flight_waiters: list = []
        # replica regions some fetch already put on the wire towards this
        # process; concurrent stagers wait instead of fetching them again,
        # so each element travels at most once per demand epoch whether or
        # not coalescing is enabled
        self._fetching: dict[DataItem, Region] = {}
        self._fetching_waiters: list = []
        self.replica_cache = ReplicaCache(
            self, process.runtime.config.replica_cache_bytes
        )
        self.plan_log: deque[TransferPlan] = deque(maxlen=PLAN_LOG_LIMIT)

    # -- basic views --------------------------------------------------------------

    @property
    def pid(self) -> int:
        return self.process.pid

    def fragment(self, item: DataItem) -> Fragment:
        fragment = self.fragments.get(item)
        if fragment is None:
            fragment = item.new_fragment(
                item.empty_region(),
                functional=self.process.runtime.config.functional,
            )
            self.fragments[item] = fragment
        return fragment

    def owned_region(self, item: DataItem) -> Region:
        return self.owned.get(item, item.empty_region())

    def present_region(self, item: DataItem) -> Region:
        return self.fragment(item).region

    def replica_region(self, item: DataItem) -> Region:
        return self.present_region(item).difference(self.owned_region(item))

    def in_flight_region(self, item: DataItem) -> Region:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("inflight", self.pid, item.name))
        region = self._in_flight.get(item)
        return region if region is not None else item.empty_region()

    def _mark_in_flight(self, item: DataItem, region: Region) -> None:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_release(("inflight", self.pid, item.name), region)
        self._in_flight[item] = self.in_flight_region(item).union(region)

    def _clear_in_flight(self, item: DataItem, region: Region) -> None:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_release(("inflight", self.pid, item.name), region)
        remaining = self.in_flight_region(item).difference(region)
        if remaining.is_empty():
            self._in_flight.pop(item, None)
        else:
            self._in_flight[item] = remaining
        waiters, self._in_flight_waiters = self._in_flight_waiters, []
        for waiter in waiters:
            waiter.complete(None)

    def _in_flight_change(self):
        future = self.process.runtime.engine.future()
        self._in_flight_waiters.append(future)
        return future

    def fetching_region(self, item: DataItem) -> Region:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("fetching", self.pid, item.name))
        region = self._fetching.get(item)
        return region if region is not None else item.empty_region()

    def _mark_fetching(self, item: DataItem, region: Region) -> None:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_release(("fetching", self.pid, item.name), region)
        self._fetching[item] = self.fetching_region(item).union(region)

    def _clear_fetching(self, item: DataItem, region: Region) -> None:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_release(("fetching", self.pid, item.name), region)
        remaining = self.fetching_region(item).difference(region)
        if remaining.is_empty():
            self._fetching.pop(item, None)
        else:
            self._fetching[item] = remaining
        waiters, self._fetching_waiters = self._fetching_waiters, []
        for waiter in waiters:
            waiter.complete(None)

    def _fetching_change(self):
        future = self.process.runtime.engine.future()
        self._fetching_waiters.append(future)
        return future

    # -- ownership changes (synchronous bookkeeping) --------------------------------

    def allocate(self, item: DataItem, region: Region) -> None:
        """First-touch allocation — the *(init)* transition.

        Atomic claim: whatever became owned anywhere since the caller's
        lookup is excluded synchronously (the index root cover is the
        global ownership union, maintained without yields), so concurrent
        first touches can never create overlapping ownership.
        """
        if region.is_empty():
            return
        runtime = self.process.runtime
        index = runtime.index
        global_cover = index.covered(item, index.levels, 0).difference(
            self.owned_region(item)
        )
        region = region.difference(global_cover)
        if region.is_empty():
            return
        fragment = self.fragment(item)
        grown = fragment.region.union(region)
        added_bytes = item.region_bytes(region.difference(fragment.region))
        # charge the memory budget *before* touching the fragment: a
        # MemoryExhaustedError must not leave present-but-unowned bytes
        self.process.node.allocate(added_bytes)
        fragment.resize(grown)
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_write(self.pid, item, region, "allocate")
        self.owned[item] = self.owned_region(item).union(region)
        # a local replica of an unowned region (e.g. orphaned by a node
        # failure) may be claimed here: it is now owned, not replicated
        runtime.unregister_replica(item, self.pid, region)
        self.replica_cache.note_dropped(item, region)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        runtime.metrics.incr("dm.allocations")
        runtime.metrics.incr("dm.allocated_bytes", added_bytes)

    def export_owned(self, item: DataItem, region: Region) -> FragmentPayload:
        """Cut owned data out for a migration; caller charges the transfer."""
        runtime = self.process.runtime
        part = self.owned_region(item).intersect(region)
        fragment = self.fragment(item)
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_write(self.pid, item, part, "migrate-out")
        payload = fragment.extract(part)
        fragment.resize(fragment.region.difference(part))
        self.process.node.free(item.region_bytes(part))
        self.owned[item] = self.owned_region(item).difference(part)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_export(self.pid, item, payload)
        runtime.metrics.incr("dm.exports")
        return payload

    def import_owned(self, item: DataItem, payload: FragmentPayload) -> None:
        """Splice migrated-in data; ownership follows the data."""
        runtime = self.process.runtime
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_import(self.pid, item, payload)
        fragment = self.fragment(item)
        added = payload.region.difference(fragment.region)
        self.process.node.allocate(item.region_bytes(added))
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_write(self.pid, item, payload.region, "migrate-in")
        fragment.insert(payload)
        self.owned[item] = self.owned_region(item).union(payload.region)
        # data this process previously held as a replica is now owned here
        runtime.unregister_replica(item, self.pid, payload.region)
        self.replica_cache.note_dropped(item, payload.region)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        runtime.metrics.incr("dm.imports")

    def insert_replica(self, item: DataItem, payload: FragmentPayload) -> None:
        """Splice replicated (read-only) data; ownership unchanged."""
        runtime = self.process.runtime
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_import(self.pid, item, payload)
        fragment = self.fragment(item)
        added = payload.region.difference(fragment.region)
        self.process.node.allocate(item.region_bytes(added))
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_write(self.pid, item, payload.region, "replica-in")
        fragment.insert(payload)
        # anything that became locally *owned* while the payload was in
        # transit (a concurrent write staging here) is not a replica
        replicated = payload.region.difference(self.owned_region(item))
        if not replicated.is_empty():
            runtime.register_replica(item, self.pid, replicated)
        runtime.metrics.incr("dm.replicas_fetched")

    def drop_replica(self, item: DataItem, region: Region) -> None:
        """Invalidate local replicated data (never touches owned data)."""
        victim = self.replica_region(item).intersect(region)
        if victim.is_empty():
            return
        fragment = self.fragment(item)
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_write(self.pid, item, victim, "invalidate")
        fragment.resize(fragment.region.difference(victim))
        self.process.node.free(item.region_bytes(victim))
        self.process.runtime.unregister_replica(item, self.pid, victim)
        self.replica_cache.note_dropped(item, victim)
        self.process.runtime.metrics.incr("dm.replicas_dropped")

    # -- requirement satisfaction (simulation processes) --------------------------------

    def requirements_hold(self, task: TaskSpec) -> bool:
        """Do the *start* rule's data premises hold here, right now?

        Synchronous re-verification run *after* lock acquisition: between
        :meth:`ensure_for_task` completing and the locks being granted,
        other simulation processes run — a remote task may re-replicate
        part of the write set, or a concurrent migration may steal
        ownership staged here.  Both races are invisible to the (already
        satisfied) staging pass; catching them under lock and restaging
        closes them.  Checks only — no yields, no side effects — so a
        failed verification holds the just-acquired locks for zero
        simulated time.
        """
        runtime = self.process.runtime
        for item in task.accessed_items_ordered():
            write = task.write_region(item)
            if not write.is_empty():
                if not self.owned_region(item).covers(write):
                    return False
                for pid, region in runtime.replica_holders(item).items():
                    if pid != self.pid and region.overlaps(write):
                        return False
            accessed = task.accessed_region(item)
            if not self.present_region(item).covers(accessed):
                return False
            if self.in_flight_region(item).overlaps(accessed):
                return False
        return True

    def ensure_for_task(self, task: TaskSpec) -> Generator:
        """Bring all data ``task`` requires into this address space.

        The write set ends up owned here exclusively; the read set is at
        least replicated here.  Drives migrations, replications, replica
        invalidations and allocations; completes when the *start* rule's
        data premises hold locally.  Every pass builds a
        :class:`~repro.runtime.transfers.TransferPlan` so planned bytes
        can be audited against moved bytes.
        """
        runtime = self.process.runtime
        plan = TransferPlan(dst=self.pid, purpose=task.name)
        for item in task.accessed_items_ordered():
            write = task.write_region(item)
            if not write.is_empty():
                yield from self._acquire_ownership(
                    item, write, task=task, plan=plan
                )
                # exclusive writes: no replicas of the write set elsewhere.
                # Defer to older stagers whose *read* premise overlaps the
                # write first — invalidating replicas they are still
                # fetching ping-pongs against their re-fetch forever.
                while runtime.write_intent_blocked(
                    item, write, task, against_reads=True
                ):
                    yield runtime.intent_change()
                yield from runtime.invalidate_replicas(item, write, self.pid)
            read = task.read_region(item)
            if not read.is_empty():
                reused = read.intersect(self.present_region(item)).difference(
                    self.owned_region(item)
                )
                if not reused.is_empty():
                    # read served from an already-present replica
                    self.replica_cache.record_hit(item, reused)
                    plan.record_hit(item, reused)
            missing = read.difference(self.present_region(item))
            if not missing.is_empty():
                self.replica_cache.record_miss(item, missing)
                yield from self._fetch_replicas(
                    item, missing, task=task, plan=plan
                )
            # data whose ownership arrived but whose bytes are still on
            # the wire is not usable yet
            accessed = task.accessed_region(item)
            while self.in_flight_region(item).overlaps(accessed):
                yield self._in_flight_change()
        self._finish_plan(plan)

    def _finish_plan(self, plan: TransferPlan) -> None:
        if not (plan.planned or plan.moved or plan.hits):
            return
        plan.finish(self.process.runtime)
        self.plan_log.append(plan)

    def _acquire_ownership(
        self,
        item: DataItem,
        region: Region,
        task: object = None,
        plan: TransferPlan | None = None,
    ) -> Generator:
        runtime = self.process.runtime
        cfg = runtime.config
        for _attempt in range(8):
            missing = region.difference(self.owned_region(item))
            if missing.is_empty():
                return
            # defer to older staging writers instead of stealing their
            # freshly migrated ownership back (livelock otherwise); the
            # read premise counts too — migrating ownership from under an
            # older stager's read set disturbs what it already verified
            while runtime.write_intent_blocked(
                item, missing, task, against_reads=True
            ):
                yield runtime.intent_change()
            missing = region.difference(self.owned_region(item))
            if missing.is_empty():
                return
            mapping, unresolved = yield from runtime.index.lookup(
                item, missing, self.pid
            )
            if cfg.comm_coalescing:
                # all pieces owned by one peer move as one migration
                grouped: dict[int, Region] = {}
                for part, owner in mapping:
                    if owner == self.pid:
                        continue
                    current = grouped.get(owner)
                    grouped[owner] = (
                        part if current is None else current.union(part)
                    )
                for owner in sorted(grouped):
                    if plan is not None:
                        plan.plan(item, grouped[owner], owner, "migrate")
                    yield from self._migrate_in(
                        item, grouped[owner], owner, plan=plan
                    )
            else:
                for part, owner in mapping:
                    if owner == self.pid:
                        # owned locally but not recorded? (lost race) — re-check
                        continue
                    if plan is not None:
                        plan.plan(item, part, owner, "migrate")
                    yield from self._migrate_in(item, part, owner, plan=plan)
            if not unresolved.is_empty():
                # present nowhere: first-touch allocation (init rule).
                # Allocate at fragment granularity — the whole not-yet-
                # initialized part of this process's home block — so the
                # initialization phase produces one big fragment per
                # process instead of one sliver per task.
                grab = unresolved
                homes = runtime.home_map(item)
                if homes is not None:
                    top = runtime.index.covered(
                        item, runtime.index.levels, 0
                    )
                    uninitialized = homes[self.pid].difference(top)
                    grab = grab.union(uninitialized)
                if plan is not None:
                    plan.plan(item, unresolved, self.pid, "allocate")
                yield self.process.node.execute(cfg.fragment_op_overhead)
                before = self.owned_region(item)
                self.allocate(item, grab)
                if plan is not None:
                    gained = (
                        self.owned_region(item)
                        .difference(before)
                        .intersect(unresolved)
                    )
                    plan.record_moved(item, gained, self.pid, "allocate", 0)
        missing = region.difference(self.owned_region(item))
        if not missing.is_empty():
            raise RuntimeError(
                f"process {self.pid} could not acquire ownership of "
                f"{missing.size()} write elements of {item.name!r} after "
                "repeated attempts (ownership thrashing?)"
            )

    def _migrate_in(
        self,
        item: DataItem,
        region: Region,
        src: int,
        plan: TransferPlan | None = None,
    ) -> Generator:
        """One migration transfer: request, wait for locks, move bytes.

        Ownership is handed over *atomically* at export time (before the
        bytes travel), so no element is ever owned by nobody — a window in
        which a concurrent first touch could re-allocate it.  The region
        is marked in flight at the destination until the payload lands;
        tasks and replica fetches wait on that marker.
        """
        runtime = self.process.runtime
        cfg = runtime.config
        network = runtime.network
        peer = runtime.process(src)
        yield network.send(self.pid, src, cfg.control_message_bytes)
        # (migrate) guard: no locks at the source on the moving region,
        # and the source must actually hold the bytes (not in flight)
        while peer.locks.any_locked(item, region):
            yield peer.locks.wait_for_change()
        while peer.data_manager.in_flight_region(item).overlaps(region):
            yield peer.data_manager._in_flight_change()
        part = peer.data_manager.owned_region(item).intersect(region)
        if part.is_empty():
            return  # someone else migrated it away meanwhile
        yield peer.node.execute(cfg.fragment_op_overhead)
        payload = peer.data_manager.export_owned(item, part)
        # atomic handover: ownership (and the index) move now
        self.owned[item] = self.owned_region(item).union(payload.region)
        runtime.unregister_replica(item, self.pid, payload.region)
        self.replica_cache.note_dropped(item, payload.region)
        runtime.index.update_ownership(item, self.pid, self.owned[item])
        self._mark_in_flight(item, payload.region)
        try:
            yield network.send(src, self.pid, max(1, payload.nbytes))
            yield from self._land_migration(item, payload)
        finally:
            self._clear_in_flight(item, payload.region)
        runtime.metrics.incr("dm.migrations")
        runtime.metrics.incr("dm.migrated_bytes", payload.nbytes)
        if plan is not None:
            plan.record_moved(
                item, payload.region, src, "migrate", payload.nbytes
            )

    def _land_migration(
        self, item: DataItem, payload: FragmentPayload
    ) -> Generator:
        """Splice an arrived migration payload — unless this node died.

        A node can fail while a payload addressed to it is still on the
        wire; the failure already dropped the destination's ownership (the
        region reads as present nowhere, recoverable from a checkpoint),
        so the late payload must be *dead-lettered*.  Splicing it would
        resurrect bytes on a corpse: a fragment no one owns, invisible to
        the index — silent data corruption the sentinel's coherence scan
        flags immediately.
        """
        if self.process.failed:
            self.process.runtime.metrics.incr("dm.dead_letter_payloads")
            return
        yield self.process.node.execute(
            self.process.runtime.config.fragment_op_overhead
        )
        if self.process.failed:
            # died during the splice overhead window
            self.process.runtime.metrics.incr("dm.dead_letter_payloads")
            return
        self._store_payload(item, payload)

    def _store_payload(self, item: DataItem, payload: FragmentPayload) -> None:
        """Splice arrived bytes into the fragment (ownership already here)."""
        runtime = self.process.runtime
        if runtime.sentinel is not None:
            runtime.sentinel.on_payload_import(self.pid, item, payload)
        fragment = self.fragment(item)
        added = payload.region.difference(fragment.region)
        self.process.node.allocate(item.region_bytes(added))
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_write(self.pid, item, payload.region, "migrate-land")
        fragment.insert(payload)
        runtime.metrics.incr("dm.imports")

    def _fetch_replicas(
        self,
        item: DataItem,
        missing: Region,
        task: object = None,
        plan: TransferPlan | None = None,
    ) -> Generator:
        runtime = self.process.runtime
        cfg = runtime.config
        want = missing
        for _attempt in range(5):
            missing = want.difference(self.present_region(item))
            if missing.is_empty():
                return
            # a staging writer invalidates replicas of its write set as
            # fast as we can re-fetch them; wait out its reservation
            # rather than burning retry attempts against it
            while runtime.write_intent_blocked(item, missing, task):
                yield runtime.intent_change()
            missing = want.difference(self.present_region(item))
            if missing.is_empty():
                return
            # fetch dedup: whoever marked an overlapping region already
            # has those bytes on the wire towards this process — wait for
            # them to land instead of moving the same elements twice
            while self.fetching_region(item).overlaps(missing):
                yield self._fetching_change()
                missing = want.difference(self.present_region(item))
                if missing.is_empty():
                    return
            self._mark_fetching(item, missing)
            try:
                mapping, unresolved = yield from runtime.index.lookup(
                    item, missing, self.pid
                )
                if cfg.comm_coalescing:
                    yield from self._replicate_coalesced(item, mapping, plan)
                else:
                    yield from self._replicate_sequential(item, mapping, plan)
                if not unresolved.is_empty():
                    # reading data never written nor initialized: surface it
                    # as a zero-initialized first touch.  allocate() claims
                    # atomically; anything claimed elsewhere meanwhile is
                    # re-fetched on the next attempt.
                    if plan is not None:
                        plan.plan(item, unresolved, self.pid, "allocate")
                    yield self.process.node.execute(cfg.fragment_op_overhead)
                    before = self.owned_region(item)
                    self.allocate(item, unresolved)
                    if plan is not None:
                        gained = (
                            self.owned_region(item)
                            .difference(before)
                            .intersect(unresolved)
                        )
                        plan.record_moved(
                            item, gained, self.pid, "allocate", 0
                        )
                    runtime.metrics.incr("dm.uninitialized_reads")
            finally:
                self._clear_fetching(item, missing)
        missing = want.difference(self.present_region(item))
        if missing.is_empty():
            return
        yield from self._escalate_fetch(item, missing, task, plan)

    def _escalate_fetch(
        self,
        item: DataItem,
        missing: Region,
        task: object = None,
        plan: TransferPlan | None = None,
    ) -> Generator:
        """Escalate a starved replica fetch to an ownership migration.

        Every replica fetch lost the race against concurrent ownership
        migration (an aggressive load balancer can keep a region moving
        faster than one fetch round-trip).  Ownership handover is atomic
        at export time, so a pull cannot be outrun the way a copy can.
        """
        runtime = self.process.runtime
        runtime.metrics.incr("dm.read_escalations")
        yield from self._acquire_ownership(item, missing, task=task, plan=plan)

    def _replicate_sequential(
        self,
        item: DataItem,
        mapping: list[tuple[Region, int]],
        plan: TransferPlan | None,
    ) -> Generator:
        """The paper-prototype path: one request + one payload per piece."""
        runtime = self.process.runtime
        cfg = runtime.config
        network = runtime.network
        for part, owner in mapping:
            if owner == self.pid:
                continue
            if plan is not None:
                plan.plan(item, part, owner, "replicate")
            peer = runtime.process(owner)
            yield network.send(self.pid, owner, cfg.control_message_bytes)
            # (replicate) guard: no *write* locks at the source, and the
            # source's bytes must have physically arrived
            while peer.locks.write_locked(item, part):
                yield peer.locks.wait_for_change()
            while peer.data_manager.in_flight_region(item).overlaps(part):
                yield peer.data_manager._in_flight_change()
            # the data may have moved away while we waited; take what
            # is still there and retry for the rest
            part = part.intersect(
                peer.data_manager.present_region(item)
            )
            if part.is_empty():
                continue
            yield peer.node.execute(cfg.fragment_op_overhead)
            monitor = _verify.current
            if monitor is not None:
                monitor.frag_read(owner, item, part, "replica-read")
            payload = peer.data_manager.fragment(item).extract(part)
            yield network.send(owner, self.pid, max(1, payload.nbytes))
            yield self.process.node.execute(cfg.fragment_op_overhead)
            self.insert_replica(item, payload)
            self.replica_cache.note_fetched(item, payload.region)
            runtime.metrics.incr("dm.replicated_bytes", payload.nbytes)
            if plan is not None:
                plan.record_moved(
                    item, payload.region, owner, "replicate", payload.nbytes
                )

    def _replicate_coalesced(
        self,
        item: DataItem,
        mapping: list[tuple[Region, int]],
        plan: TransferPlan | None,
    ) -> Generator:
        """The coalescing path: one bulk fetch per owning peer, all peers
        in parallel (single fan-out, ``all_of`` join)."""
        runtime = self.process.runtime
        grouped: dict[int, list[Region]] = {}
        for part, owner in mapping:
            if owner == self.pid:
                continue
            grouped.setdefault(owner, []).append(part)
        if not grouped:
            return
        engine = runtime.engine
        fetchers = [
            engine.spawn(
                self._fetch_bulk_from_peer(item, grouped[owner], owner, plan)
            )
            for owner in sorted(grouped)
        ]
        yield engine.all_of(fetchers)

    def _fetch_bulk_from_peer(
        self,
        item: DataItem,
        parts: list[Region],
        owner: int,
        plan: TransferPlan | None,
    ) -> Generator:
        """One coalesced replica fetch: every piece a peer owns for us,
        one control request, one bulk payload charged once on the NIC."""
        runtime = self.process.runtime
        cfg = runtime.config
        network = runtime.network
        peer = runtime.process(owner)
        region = parts[0]
        for part in parts[1:]:
            region = region.union(part)
        if plan is not None:
            plan.plan(item, region, owner, "replicate")
        yield network.send(self.pid, owner, cfg.control_message_bytes)
        # (replicate) guard over the whole coalesced region
        while peer.locks.write_locked(item, region):
            yield peer.locks.wait_for_change()
        while peer.data_manager.in_flight_region(item).overlaps(region):
            yield peer.data_manager._in_flight_change()
        pieces = []
        for part in parts:
            still = part.intersect(peer.data_manager.present_region(item))
            if not still.is_empty():
                pieces.append(still)
        if not pieces:
            return
        union = pieces[0]
        for piece in pieces[1:]:
            union = union.union(piece)
        yield peer.node.execute(cfg.fragment_op_overhead)
        monitor = _verify.current
        if monitor is not None:
            monitor.frag_read(owner, item, union, "replica-read")
        payload = peer.data_manager.fragment(item).extract(union)
        sizes = [item.region_bytes(piece) for piece in pieces]
        if runtime.sentinel is not None:
            runtime.sentinel.on_coalesced_transfer(
                owner, self.pid, item, payload, pieces, sizes
            )
        yield network.send_bulk(
            owner, self.pid, sizes if payload.nbytes else [1]
        )
        yield self.process.node.execute(cfg.fragment_op_overhead)
        self.insert_replica(item, payload)
        self.replica_cache.note_fetched(item, payload.region)
        runtime.metrics.incr("dm.replicated_bytes", payload.nbytes)
        runtime.metrics.incr("comms.coalesced_fetches")
        runtime.metrics.incr("comms.coalesced_parts", len(pieces))
        if plan is not None:
            plan.record_moved(
                item, payload.region, owner, "replicate", payload.nbytes
            )

    # -- replica prefetch (scheduler-initiated) ----------------------------------------

    def prefetch_for_task(
        self, task: TaskSpec, lookup: dict[DataItem, list[tuple[Region, int]]]
    ) -> None:
        """Fire-and-forget prefetch of ``task``'s remote read-only pieces.

        Launched by the scheduler right after placement, reusing the
        Algorithm-1 lookup it already charged, so the transfers overlap
        the task's dispatch instead of serializing into its staging loop.
        """
        self.process.runtime.engine.spawn(self._prefetch(task, lookup))

    def _prefetch(
        self, task: TaskSpec, lookup: dict[DataItem, list[tuple[Region, int]]]
    ) -> Generator:
        runtime = self.process.runtime
        engine = runtime.engine
        plan = TransferPlan(dst=self.pid, purpose=f"prefetch:{task.name}")
        fetchers = []
        marked: list[tuple[DataItem, Region]] = []
        for item in task.accessed_items_ordered():
            readonly = task.read_region(item).difference(
                task.write_region(item)
            )
            if readonly.is_empty():
                continue
            missing = (
                readonly.difference(self.present_region(item))
                .difference(self.fetching_region(item))
                .difference(self.in_flight_region(item))
            )
            if missing.is_empty():
                continue
            # don't race a staging writer for the same bytes: the copy
            # would be invalidated before the task arrives, and staging
            # re-fetches whatever is still missing anyway
            if runtime.write_intent_blocked(item, missing, None):
                continue
            grouped: dict[int, list[Region]] = {}
            for part, owner in lookup.get(item, ()):
                if owner == self.pid:
                    continue
                wanted = part.intersect(missing)
                if not wanted.is_empty():
                    grouped.setdefault(owner, []).append(wanted)
            if not grouped:
                continue
            covered = item.empty_region()
            for pieces in grouped.values():
                for piece in pieces:
                    covered = covered.union(piece)
            self._mark_fetching(item, covered)
            marked.append((item, covered))
            for owner in sorted(grouped):
                fetchers.append(
                    engine.spawn(
                        self._fetch_bulk_from_peer(
                            item, grouped[owner], owner, plan
                        )
                    )
                )
        if not fetchers:
            return
        runtime.metrics.incr("comms.prefetches")
        try:
            yield engine.all_of(fetchers)
        finally:
            for item, covered in marked:
                self._clear_fetching(item, covered)
        runtime.metrics.incr("comms.prefetched_bytes", plan.moved_bytes())
        self._finish_plan(plan)

    def __repr__(self) -> str:
        return (
            f"DataItemManager(pid={self.pid}, items={len(self.fragments)})"
        )
