"""Monitoring infrastructure (paper §3.2, AllScale deliverable D5.2).

The runtime model makes task and data management observable; this module
aggregates the per-process and network counters into structured reports:
per-process task counts, queue states, data ownership and replica volumes,
memory usage, and cluster-wide communication totals.  The load balancer
consumes the same signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


@dataclass
class ProcessReport:
    """Snapshot of one runtime process."""

    pid: int
    executed_leaves: int
    executed_splits: int
    queued_tasks: int
    active_tasks: int
    backlog_seconds: float
    owned_bytes: float
    replica_bytes: float
    memory_used: float


@dataclass
class RuntimeReport:
    """Cluster-wide monitoring snapshot."""

    sim_time: float
    processes: list[ProcessReport] = field(default_factory=list)
    total_messages: float = 0.0
    total_bytes: float = 0.0
    migrations: float = 0.0
    replications: float = 0.0
    invalidations: float = 0.0
    index_lookups: int = 0
    index_hops: int = 0
    lock_waits: float = 0.0

    @property
    def total_leaves(self) -> int:
        return sum(p.executed_leaves for p in self.processes)

    def load_imbalance(self) -> float:
        """max/mean ratio of per-process executed leaf tasks (1.0 = even)."""
        counts = [p.executed_leaves for p in self.processes]
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean else 0.0

    def summary_lines(self) -> list[str]:
        lines = [
            f"sim time          : {self.sim_time:.6f} s",
            f"leaf tasks        : {self.total_leaves}",
            f"splits            : {sum(p.executed_splits for p in self.processes)}",
            f"messages / bytes  : {self.total_messages:.0f} / {self.total_bytes:.3g}",
            f"migrations        : {self.migrations:.0f}",
            f"replications      : {self.replications:.0f}",
            f"invalidations     : {self.invalidations:.0f}",
            f"index lookups/hops: {self.index_lookups} / {self.index_hops}",
            f"lock waits        : {self.lock_waits:.0f}",
            f"load imbalance    : {self.load_imbalance():.3f}",
        ]
        return lines


class Monitor:
    """On-demand and periodic monitoring of a running AllScale runtime.

    ``report()`` takes a snapshot; ``start_sampling(interval)`` records a
    time series of snapshots while the event loop runs (the "on-demand,
    on-line" mode of the AllScale monitoring deliverable), retrievable via
    ``samples`` and summarized by :meth:`utilization_series`.
    """

    def __init__(self, runtime: "AllScaleRuntime") -> None:
        self.runtime = runtime
        self.samples: list[RuntimeReport] = []
        self._sampling = False

    # -- periodic sampling -----------------------------------------------------

    def start_sampling(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self._sampling:
            self._sampling = True
            self.runtime.engine.spawn(self._sample_loop(interval))

    def stop_sampling(self) -> None:
        self._sampling = False

    def _sample_loop(self, interval: float):
        while self._sampling:
            yield interval
            self.samples.append(self.report())

    def utilization_series(self) -> list[tuple[float, float]]:
        """(time, mean backlog seconds per process) per sample."""
        series = []
        for report in self.samples:
            if report.processes:
                backlog = sum(
                    p.backlog_seconds for p in report.processes
                ) / len(report.processes)
            else:
                backlog = 0.0
            series.append((report.sim_time, backlog))
        return series

    def throughput_series(self) -> list[tuple[float, float]]:
        """(time, leaf tasks completed per second since previous sample)."""
        series = []
        previous_time = 0.0
        previous_leaves = 0
        for report in self.samples:
            dt = report.sim_time - previous_time
            rate = (
                (report.total_leaves - previous_leaves) / dt if dt > 0 else 0.0
            )
            series.append((report.sim_time, rate))
            previous_time = report.sim_time
            previous_leaves = report.total_leaves
        return series

    def report(self) -> RuntimeReport:
        runtime = self.runtime
        metrics = runtime.metrics
        report = RuntimeReport(
            sim_time=runtime.now,
            total_messages=metrics.counter("net.messages"),
            total_bytes=metrics.counter("net.bytes"),
            migrations=metrics.counter("dm.migrations"),
            replications=metrics.counter("dm.replicas_fetched"),
            invalidations=metrics.counter("dm.invalidations"),
            index_lookups=runtime.index.lookups,
            index_hops=runtime.index.lookup_hops,
            lock_waits=metrics.counter("proc.lock_waits"),
        )
        for process in runtime.processes:
            manager = process.data_manager
            owned_bytes = sum(
                item.region_bytes(manager.owned_region(item))
                for item in manager.fragments
            )
            replica_bytes = sum(
                item.region_bytes(manager.replica_region(item))
                for item in manager.fragments
            )
            report.processes.append(
                ProcessReport(
                    pid=process.pid,
                    executed_leaves=process.executed_leaves,
                    executed_splits=process.executed_splits,
                    queued_tasks=process.queue_length(),
                    active_tasks=process.active,
                    backlog_seconds=process.node.backlog(),
                    owned_bytes=owned_bytes,
                    replica_bytes=replica_bytes,
                    memory_used=process.node.memory_used,
                )
            )
        return report
