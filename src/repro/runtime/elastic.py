"""Elastic cluster membership: scale-out, graceful drain, failure storms.

The paper's model is presented over a static set of runtime processes
(§3.2); its outlook names "dynamic environments" as the motivation for
routing every data access through the runtime.  This module supplies the
dynamics: nodes *join* a running computation (ownership subtrees and a
share of the data migrate to them), *leave* gracefully (queued tasks,
replicas, and owned regions evacuate before departure), or *fail in
correlated storms* (checkpoint/restore re-materializes the lost regions
on the survivors).

All three operations are simulation coroutines — their control messages,
payload transfers, and fragment splices ride the same simulated network
and cores as everything else, so elasticity overhead is visible in
benchmark time.  A :class:`ChurnController` replays a deterministic
schedule of :class:`ChurnEvent`\\ s against a live runtime; the churn
bench and the fault-injection test matrix both drive it.

Metrics published under ``elastic.*``:

* ``elastic.joins`` / ``elastic.drains`` / ``elastic.failures`` — event
  counts (``elastic.churn_events`` totals them);
* ``elastic.join_migrated_bytes`` — bytes seeded onto joining nodes;
* ``elastic.evacuated_bytes`` — bytes moved off departing nodes
  (replicas dropped in place are counted separately as
  ``elastic.dropped_replica_bytes`` — copies need no evacuation);
* ``elastic.restored_bytes`` — checkpoint bytes re-materialized after a
  storm;
* ``elastic.recovery_time`` / ``elastic.drain_time`` — stats (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.runtime.balancer import take_slice
from repro.runtime.resilience import Checkpoint, ResilienceManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime


# -- scale-out --------------------------------------------------------------------


def scale_out(
    runtime: "AllScaleRuntime",
    cores: int | None = None,
    flops_per_core: float | None = None,
    memory_bytes: float | None = None,
    gpus: int | None = None,
    share: float | None = None,
) -> Generator:
    """Join one node mid-run and seed it with a share of the data.

    The cluster grows (:meth:`AllScaleRuntime.add_process` — possibly a
    heterogeneous node), then for every item a slice of the *largest*
    owner's region migrates to the newcomer so future tasks have a
    reason to land there (§3.2: moving data moves load).  ``share``
    defaults to ``1/P`` of the donor's region — an equal share of the
    enlarged cluster.  Items whose region scheme has no slicing strategy
    stay put; the balancer and first-touch spreading pick those up.

    Returns the new pid (via ``return`` — drive with ``yield from``).
    """
    pid = runtime.add_process(
        cores=cores,
        flops_per_core=flops_per_core,
        memory_bytes=memory_bytes,
        gpus=gpus,
    )
    runtime.metrics.incr("elastic.joins")
    runtime.metrics.incr("elastic.churn_events")
    fraction = share if share is not None else 1.0 / runtime.num_processes
    newcomer = runtime.process(pid).data_manager
    seeded = 0
    for item in runtime.items:
        donors = [
            p
            for p in runtime.processes
            if p.pid != pid
            and not p.failed
            and not p.data_manager.owned_region(item).is_empty()
        ]
        if not donors:
            continue
        donor = max(
            donors,
            key=lambda p: (p.data_manager.owned_region(item).size(), -p.pid),
        )
        owned = donor.data_manager.owned_region(item)
        piece = take_slice(owned, fraction)
        if piece is None:
            continue
        before = newcomer.owned_region(item)
        yield from newcomer._migrate_in(item, piece, donor.pid)
        gained = newcomer.owned_region(item).difference(before)
        seeded += item.region_bytes(gained)
    runtime.metrics.incr("elastic.join_migrated_bytes", seeded)
    return pid


# -- graceful scale-in --------------------------------------------------------------


def drain(runtime: "AllScaleRuntime", pid: int) -> Generator:
    """Gracefully remove process ``pid`` from a running computation.

    Three-stage protocol, each stage a fixpoint loop:

    1. **Task quiesce** — queued tasks forward to the redirect target
       (one task-message charge each); active tasks run to completion;
       in-flight and fetching transfers land.  The ``draining`` flag set
       up front makes the scheduler, balancer, and stealers route around
       the node meanwhile, and late-arriving parcels self-forward.
    2. **Data evacuation** — replicas are dropped in place (they are
       copies; the owners still hold the bytes), then every owned
       region migrates to the remaining available processes round-robin
       through the ordinary *(migrate)* rule, index updates included.
    3. **Departure** — once nothing is queued, running, in flight, or
       owned, the process is retired through :meth:`fail_process`
       (failing an *empty* node loses nothing; it re-baselines the
       sentinel and makes every later dispatch treat the pid as gone).

    Suspended split parents (awaiting children placed elsewhere) hold no
    core slot, no locks, and no data; their combining continuation is
    allowed to outlive the departure, like a future returned from a
    departed locality.  Returns the evacuated byte count.
    """
    process = runtime.process(pid)
    if process.failed:
        raise RuntimeError(f"process {pid} already failed; cannot drain")
    if process.draining:
        raise RuntimeError(f"process {pid} is already draining")
    others = [q for q in runtime.alive_processes() if q != pid]
    if not others:
        raise RuntimeError(
            f"process {pid} is the last one alive; nowhere to evacuate"
        )
    cfg = runtime.config
    manager = process.data_manager
    t0 = runtime.now
    process.draining = True
    runtime.metrics.incr("elastic.drains")
    runtime.metrics.incr("elastic.churn_events")

    # stage 1: task quiesce
    while True:
        if process.queue:
            target = runtime._redirect_if_failed(pid)
            if target != pid:
                task, treeture, variant = process.queue.popleft()
                yield runtime.network.send(
                    pid, target, cfg.task_message_bytes
                )
                runtime.process(target).enqueue(task, treeture, variant)
                runtime.metrics.incr("elastic.evacuated_tasks")
                continue
            # every peer is draining too: run the leftovers locally
            process._kick()
            yield process._slot_free()
            continue
        if process.active:
            yield process._slot_free()
            continue
        if manager._in_flight:
            yield manager._in_flight_change()
            continue
        if manager._fetching:
            yield manager._fetching_change()
            continue
        break

    # stage 2: data evacuation
    dropped = 0
    for item in list(manager.fragments):
        replica = manager.replica_region(item)
        if not replica.is_empty():
            dropped += item.region_bytes(replica)
            manager.drop_replica(item, replica)
    runtime.metrics.incr("elastic.dropped_replica_bytes", dropped)
    evacuated = 0
    while True:
        pending = sorted(
            (
                item
                for item in list(manager.owned)
                if not manager.owned_region(item).is_empty()
            ),
            key=lambda item: item.name,
        )
        if not pending:
            break
        targets = [q for q in runtime.available_processes() if q != pid]
        if not targets:
            # everything else is draining as well; hand the data to any
            # survivor — its own drain will move it on
            targets = [q for q in runtime.alive_processes() if q != pid]
        if not targets:
            raise RuntimeError(
                f"process {pid}: no survivor left to evacuate data to"
            )
        for cursor, item in enumerate(pending):
            owned = manager.owned_region(item)
            if owned.is_empty():
                continue  # a concurrent migration beat us to it
            dst = runtime.process(targets[cursor % len(targets)])
            yield from dst.data_manager._migrate_in(item, owned, pid)
            remaining = manager.owned_region(item)
            evacuated += item.region_bytes(owned.difference(remaining))
    runtime.metrics.incr("elastic.evacuated_bytes", evacuated)

    # stage 3: departure — re-quiesce first (a task can slip in while the
    # data moves only in the everyone-drains corner, but be thorough)
    while process.queue or process.active:
        process._kick()
        yield process._slot_free()
    runtime.fail_process(pid)
    runtime.metrics.observe("elastic.drain_time", runtime.now - t0)
    return evacuated


# -- failure storms -----------------------------------------------------------------


def failure_storm(
    runtime: "AllScaleRuntime",
    victims: list[int],
    snapshot: Checkpoint | None = None,
    resilience: ResilienceManager | None = None,
    poll: float = 1e-5,
) -> Generator:
    """Correlated loss of several nodes at one instant, then recovery.

    Waits until every victim is simultaneously at a task barrier — the
    failure model's premise — polling with exponential backoff starting
    at ``poll`` simulated seconds (so millisecond-scale apps see a tight
    barrier while hour-scale apps don't drown the calendar in poll
    events), then fails them all at the same timestamp, and
    re-materializes the
    lost regions from ``snapshot`` onto the survivors.  Without a
    snapshot a checkpoint is taken at the barrier right before the
    storm, which models perfect (zero-loss) recovery; passing an older
    periodic checkpoint models the standard roll-back-the-lost-share
    semantics.

    Returns the recovery time in simulated seconds (also published as
    the ``elastic.recovery_time`` stat).
    """
    resilience = resilience or ResilienceManager(runtime)
    targets = sorted(set(victims))
    alive = set(runtime.alive_processes())
    for pid in targets:
        if pid not in alive:
            raise ValueError(f"storm victim {pid} is not alive")
    if not alive - set(targets):
        raise ValueError("a storm must leave at least one survivor")

    def _busy(pid: int) -> bool:
        victim = runtime.process(pid)
        manager = victim.data_manager
        return bool(
            victim.queue
            or victim.active
            or manager._in_flight
            or manager._fetching
        )

    while True:
        delay = poll
        while any(_busy(pid) for pid in targets):
            yield delay
            delay = min(delay * 2.0, 1.0)
        if snapshot is not None:
            break
        # checkpoint on demand — it streams to stable storage in simulated
        # time, so tasks can land on a victim meanwhile; re-verify the
        # barrier afterwards (synchronously) and retry if one did
        snapshot = yield from resilience.checkpoint()
        if not any(_busy(pid) for pid in targets):
            break
        snapshot = None

    t0 = runtime.now
    for pid in targets:
        runtime.fail_process(pid)
    runtime.metrics.incr("elastic.failures", len(targets))
    runtime.metrics.incr("elastic.churn_events")

    # what recovery will restore: checkpointed bytes now present nowhere
    restored = 0
    by_name = {item.name: item for item in runtime.items}
    for item_name, entries in snapshot.payloads.items():
        item = by_name.get(item_name)
        if item is None:
            continue
        lost = item.full_region
        for p in runtime.processes:
            lost = lost.difference(p.data_manager.present_region(item))
            if not p.failed:
                lost = lost.difference(
                    p.data_manager.in_flight_region(item)
                )
        if lost.is_empty():
            continue
        for _pid, payload in entries:
            restored += item.region_bytes(payload.region.intersect(lost))
    yield from resilience.recover_lost_data(snapshot)
    recovery_time = runtime.now - t0
    runtime.metrics.observe("elastic.recovery_time", recovery_time)
    runtime.metrics.incr("elastic.restored_bytes", restored)
    return recovery_time


# -- churn schedules ----------------------------------------------------------------


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change in a deterministic churn schedule."""

    #: simulated time at which the event fires
    at: float
    #: ``"join"`` | ``"drain"`` | ``"storm"``
    kind: str
    #: nodes joining / draining / failing together
    count: int = 1
    #: heterogeneous joiners: per-core speed of the new node(s)
    flops_per_core: float | None = None
    #: heterogeneous joiners: core count of the new node(s)
    cores: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("join", "drain", "storm"):
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("event time must be >= 0")
        if self.count < 1:
            raise ValueError("event count must be >= 1")


@dataclass
class ChurnController:
    """Replays a :class:`ChurnEvent` schedule against a live runtime.

    Victim selection is deterministic: drains and storms take the
    *highest* available pids not in ``protect`` (pid 0 is protected by
    default — apps submit from it), clamped so at least one protected or
    lower pid survives.  An optional periodic checkpointer keeps a
    rolling snapshot; storms recover from the most recent one (or
    checkpoint on demand when none exists yet).
    """

    runtime: "AllScaleRuntime"
    events: list[ChurnEvent]
    #: pids never chosen as drain/storm victims
    protect: tuple[int, ...] = (0,)
    #: seconds between rolling checkpoints (None = checkpoint on demand)
    checkpoint_interval: float | None = None
    snapshot: Checkpoint | None = None
    #: (time, kind, pid) log of applied membership changes
    log: list[tuple[float, str, int]] = field(default_factory=list)
    _future: object = None
    _running: bool = False

    def start(self):
        """Spawn the schedule (and checkpointer) as simulation processes."""
        if self._future is not None:
            raise RuntimeError("churn controller already started")
        self._running = True
        self.resilience = ResilienceManager(self.runtime)
        if self.checkpoint_interval is not None:
            self.runtime.spawn(self._checkpointer())
        self._future = self.runtime.spawn(self._run())
        return self._future

    def stop(self) -> None:
        """Let the checkpointer wind down (the schedule always completes)."""
        self._running = False

    @property
    def done(self) -> bool:
        return self._future is not None and self._future.done

    def _victims(self, count: int) -> list[int]:
        candidates = [
            pid
            for pid in self.runtime.available_processes()
            if pid not in self.protect
        ]
        return candidates[-count:] if count < len(candidates) else candidates[1:]

    def _checkpointer(self) -> Generator:
        while self._running:
            yield self.checkpoint_interval
            if not self._running:
                return
            self.snapshot = yield from self.resilience.checkpoint()

    def _run(self) -> Generator:
        runtime = self.runtime
        for event in sorted(self.events, key=lambda e: e.at):
            wait = event.at - runtime.now
            if wait > 0:
                yield wait
            if event.kind == "join":
                for _ in range(event.count):
                    pid = yield from scale_out(
                        runtime,
                        cores=event.cores,
                        flops_per_core=event.flops_per_core,
                    )
                    self.log.append((runtime.now, "join", pid))
            elif event.kind == "drain":
                for pid in reversed(self._victims(event.count)):
                    yield from drain(runtime, pid)
                    self.log.append((runtime.now, "drain", pid))
            else:  # storm
                victims = self._victims(event.count)
                if not victims:
                    continue
                snapshot = self.snapshot  # rolling, or on-demand if None
                yield from failure_storm(
                    runtime,
                    victims,
                    snapshot=snapshot,
                    resilience=self.resilience,
                )
                for pid in victims:
                    self.log.append((runtime.now, "storm", pid))
        self._running = False
