"""Per-task execution tracing and timeline rendering.

An optional deep-inspection layer over the monitoring component: when an
:class:`ExecutionTracer` is attached to a runtime, every leaf task records
its lifecycle timestamps — enqueue, handling start, data staged, locks
acquired, compute done — and where it ran.  The tracer can then report

* per-task phase breakdowns (queueing vs. data staging vs. lock waiting
  vs. compute),
* per-process utilization over time, and
* an ASCII Gantt chart of the busiest window,

which is how the task-overhead findings in EXPERIMENTS.md were diagnosed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TaskRecord:
    """Lifecycle timestamps (simulated seconds) of one leaf task."""

    name: str
    pid: int
    enqueued: float = 0.0
    started: float = 0.0
    data_ready: float = 0.0
    locks_held: float = 0.0
    finished: float = 0.0

    @property
    def queue_wait(self) -> float:
        return max(0.0, self.started - self.enqueued)

    @property
    def staging_time(self) -> float:
        return max(0.0, self.data_ready - self.started)

    @property
    def lock_wait(self) -> float:
        return max(0.0, self.locks_held - self.data_ready)

    @property
    def compute_time(self) -> float:
        return max(0.0, self.finished - self.locks_held)

    @property
    def total(self) -> float:
        return max(0.0, self.finished - self.enqueued)


@dataclass
class PhaseBreakdown:
    """Aggregate of where leaf-task time went."""

    queue_wait: float = 0.0
    staging: float = 0.0
    lock_wait: float = 0.0
    compute: float = 0.0
    tasks: int = 0

    @property
    def total(self) -> float:
        return self.queue_wait + self.staging + self.lock_wait + self.compute

    def fractions(self) -> dict[str, float]:
        total = self.total or 1.0
        return {
            "queue_wait": self.queue_wait / total,
            "staging": self.staging / total,
            "lock_wait": self.lock_wait / total,
            "compute": self.compute / total,
        }


class ExecutionTracer:
    """Collects :class:`TaskRecord` entries from a runtime's processes.

    Attach before submitting work::

        tracer = ExecutionTracer()
        runtime.tracer = tracer
        ... run ...
        print(tracer.render_gantt(num_processes=runtime.num_processes))
    """

    def __init__(self, max_records: int = 100_000) -> None:
        self.records: list[TaskRecord] = []
        self.max_records = max_records
        self._open: dict[object, TaskRecord] = {}

    # -- hooks (called by RuntimeProcess) --------------------------------------

    def on_enqueue(self, key: object, name: str, pid: int, now: float) -> None:
        if len(self.records) + len(self._open) >= self.max_records:
            return
        self._open[key] = TaskRecord(name=name, pid=pid, enqueued=now)

    def on_start(self, key: object, now: float) -> None:
        record = self._open.get(key)
        if record:
            record.started = now

    def on_data_ready(self, key: object, now: float) -> None:
        record = self._open.get(key)
        if record:
            record.data_ready = now

    def on_locks_held(self, key: object, now: float) -> None:
        record = self._open.get(key)
        if record:
            record.locks_held = now

    def on_finish(self, key: object, now: float) -> None:
        record = self._open.pop(key, None)
        if record:
            record.finished = now
            self.records.append(record)

    # -- analysis ------------------------------------------------------------------

    def breakdown(self) -> PhaseBreakdown:
        out = PhaseBreakdown()
        for record in self.records:
            out.queue_wait += record.queue_wait
            out.staging += record.staging_time
            out.lock_wait += record.lock_wait
            out.compute += record.compute_time
            out.tasks += 1
        return out

    def slowest(self, count: int = 10) -> list[TaskRecord]:
        return sorted(self.records, key=lambda r: -r.total)[:count]

    def utilization(
        self, num_processes: int, buckets: int = 20
    ) -> list[list[float]]:
        """Fraction of each time bucket each process spent computing."""
        if not self.records:
            return [[0.0] * buckets for _ in range(num_processes)]
        end = max(r.finished for r in self.records)
        start = min(r.enqueued for r in self.records)
        span = max(end - start, 1e-12)
        width = span / buckets
        grid = [[0.0] * buckets for _ in range(num_processes)]
        for record in self.records:
            lo, hi = record.locks_held, record.finished
            b0 = int((lo - start) / width)
            b1 = int((hi - start) / width)
            for b in range(max(0, b0), min(buckets, b1 + 1)):
                bucket_lo = start + b * width
                bucket_hi = bucket_lo + width
                overlap = max(
                    0.0, min(hi, bucket_hi) - max(lo, bucket_lo)
                )
                grid[record.pid][b] += overlap / width
        return grid

    def render_gantt(
        self, num_processes: int, buckets: int = 40
    ) -> str:
        """ASCII utilization chart: one row per process, shaded by load."""
        shades = " .:-=+*#%@"
        grid = self.utilization(num_processes, buckets)
        lines = ["process utilization over the traced window:"]
        for pid, row in enumerate(grid):
            cells = "".join(
                shades[min(len(shades) - 1, int(v * (len(shades) - 1)))]
                for v in row
            )
            lines.append(f"  p{pid:<3d} |{cells}|")
        return "\n".join(lines)

    def render_breakdown(self) -> str:
        breakdown = self.breakdown()
        fractions = breakdown.fractions()
        lines = [f"leaf task phase breakdown ({breakdown.tasks} tasks):"]
        for phase, fraction in fractions.items():
            bar = "#" * int(fraction * 40)
            lines.append(f"  {phase:<11} {fraction * 100:5.1f}%  {bar}")
        return "\n".join(lines)
