"""Runtime task representation and treetures.

A :class:`TaskSpec` is the runtime-level counterpart of a model-level task
with two variants (paper Example 2.3): executed as a **leaf** it performs
its whole work sequentially (``flops`` of core time plus an optional
functional ``body``); executed as the **parallel variant** it is split by
``splitter`` into child tasks whose results ``combiner`` folds back
together.  Which variant runs is the scheduling policy's choice
(Algorithm 2, line 3).

The requirement dictionaries are exactly the compiler-generated
requirement functions of §3.3: for every accessed data item, the region
read and the region written.

A :class:`Treeture` (the AllScale API's name for a task-result handle) is a
completable future carrying the task's value; ``yield treeture.future``
inside a simulation process awaits completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TYPE_CHECKING

from repro.items.base import DataItem, Fragment
from repro.regions.base import Region
from repro.util.ids import fresh_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Future, SimEngine


@dataclass(slots=True)
class TaskSpec:
    """A schedulable unit of work with declared data requirements."""

    name: str = ""
    reads: dict[DataItem, Region] = field(default_factory=dict)
    writes: dict[DataItem, Region] = field(default_factory=dict)
    #: sequential-execution cost of the whole task, in FLOPs
    flops: float = 0.0
    #: iterations/elements covered — drives granularity decisions
    size_hint: float = 1.0
    #: functional leaf work; receives a TaskExecutionContext, returns a value
    body: Callable[["TaskExecutionContext"], Any] | None = None
    #: produce child tasks (the parallel variant); None = leaf-only task
    splitter: Callable[[], list["TaskSpec"]] | None = None
    #: fold child values into this task's value (default: list of them)
    combiner: Callable[[list[Any]], Any] | None = None
    #: stop splitting once size_hint falls to this value (None: use the
    #: runtime config's min_task_size); set by pfor/prec from range sizes
    granularity: float | None = None
    #: run the body even when fragments are virtual (the body must then not
    #: touch fragment values — e.g. TPC bodies read the shared kd-tree
    #: structure, not fragment storage)
    body_in_virtual: bool = False
    #: device cost of the leaf work, enabling a GPU variant (Example 2.3's
    #: "runtime may choose between these alternatives" extended to
    #: accelerators); None = CPU-only task
    gpu_flops: float | None = None
    #: the user-authored kernel ``body`` wraps, when they differ — pfor's
    #: point kernels and prec's base cases are closed over parameters
    #: before becoming ``body``, hiding their source from the static
    #: analyzer; builders record the original here for the AST lint pass
    origin_body: Callable[..., Any] | None = None

    def transfer_bytes(self) -> int:
        """Host↔device bytes an offloaded execution must move."""
        total = 0
        for item in self.accessed_items():
            total += item.region_bytes(self.accessed_region(item))
            total += item.region_bytes(self.write_region(item))
        return total

    def __post_init__(self) -> None:
        if not self.name:
            self.name = fresh_id("rtask")
        if self.flops < 0:
            raise ValueError(f"negative flops on task {self.name!r}")
        if self.size_hint <= 0:
            raise ValueError(f"non-positive size_hint on task {self.name!r}")

    @property
    def splittable(self) -> bool:
        return self.splitter is not None

    def expand_children(self) -> list["TaskSpec"]:
        """Child specs the split variant would spawn, without running them.

        Splitters are pure constructors (they evaluate requirement
        functions, never leaf bodies), so this is safe to call outside
        the scheduler — the static analyzer unfolds task trees with it.
        """
        if self.splitter is None:
            raise ValueError(f"task {self.name!r} is leaf-only")
        return list(self.splitter())

    def accessed_items(self) -> frozenset[DataItem]:
        return frozenset(self.reads) | frozenset(self.writes)

    def accessed_items_ordered(self) -> tuple[DataItem, ...]:
        """Accessed items in the one canonical iteration order (by name).

        Every runtime component that walks a task's requirements
        (scheduler lookups, data staging, coverage checks) iterates in
        this order so message and allocation sequences are deterministic.
        """
        return tuple(sorted(self.accessed_items(), key=lambda item: item.name))

    def read_region(self, item: DataItem) -> Region:
        return self.reads.get(item, item.empty_region())

    def write_region(self, item: DataItem) -> Region:
        return self.writes.get(item, item.empty_region())

    def accessed_region(self, item: DataItem) -> Region:
        return self.read_region(item).union(self.write_region(item))

    def __repr__(self) -> str:
        kind = "splittable" if self.splittable else "leaf"
        return f"TaskSpec({self.name!r}, {kind}, size={self.size_hint:g})"


class Treeture:
    """Handle to an (eventually computed) task result.

    Mirrors the AllScale API's ``treeture<T>``: composable completion plus
    a value.  ``then`` chains lightweight callbacks; simulation processes
    await via ``yield treeture.future``.
    """

    __slots__ = ("task_name", "future")

    def __init__(self, engine: "SimEngine", task_name: str) -> None:
        from repro.sim.engine import Future  # local import to avoid cycle

        self.task_name = task_name
        self.future: Future = engine.future()

    @property
    def done(self) -> bool:
        return self.future.done

    @property
    def value(self) -> Any:
        if not self.future.done:
            raise RuntimeError(f"treeture of {self.task_name!r} not complete")
        return self.future.value

    def complete(self, value: Any = None) -> None:
        self.future.complete(value)

    def then(self, fn: Callable[[Any], None]) -> None:
        self.future.add_callback(fn)

    def __repr__(self) -> str:
        state = f"value={self.future.value!r}" if self.done else "pending"
        return f"Treeture({self.task_name!r}, {state})"


class TaskExecutionContext:
    """What a functional task body sees while running on a process.

    Provides access to the local fragments of the data items the task
    declared requirements on — reads may touch replicated halo data, writes
    land in the owned region.  Bodies must stay within their declared
    regions; the data manager only guarantees presence for those.
    """

    __slots__ = ("process_id", "_fragments", "task")

    def __init__(
        self,
        process_id: int,
        task: TaskSpec,
        fragments: Mapping[DataItem, Fragment],
    ) -> None:
        self.process_id = process_id
        self.task = task
        self._fragments = fragments

    def fragment(self, item: DataItem) -> Fragment:
        fragment = self._fragments.get(item)
        if fragment is None:
            raise KeyError(
                f"task {self.task.name!r} declared no requirement on "
                f"item {item.name!r}"
            )
        return fragment


def constant_task(value: Any, name: str = "") -> TaskSpec:
    """A no-requirement, zero-cost task producing ``value`` (testing aid)."""
    return TaskSpec(name=name or fresh_id("const"), body=lambda ctx: value)
