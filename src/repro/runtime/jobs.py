"""Job-level execution context layered on top of task-level scheduling.

The paper's runtime executes one task-graph application per run;
Algorithm 2 places *tasks*.  The service layer (:mod:`repro.service`)
runs many applications — *jobs* — concurrently over one shared simulated
cluster, each through its own :class:`~repro.runtime.runtime.AllScaleRuntime`.
A :class:`JobContext` attached to such a runtime attributes what the
task-level machinery consumes back to the job (and hence to its tenant):

* **core-seconds** — the compute time leaf executions charge on simulated
  cores (the unit tenant quotas are denominated in);
* **dispatch counts** — how many tasks Algorithm 2 placed locally vs.
  remotely on the job's behalf;
* **budget flagging** — when :attr:`RuntimeConfig.job_node_seconds_cap`
  is set, the context raises its :attr:`over_budget` flag the moment the
  accumulated core-seconds exceed the cap.  The flag is sticky and
  side-effect free: the simulation stays deterministic (no mid-run
  exceptions through shared engine state), and the service settles the
  overrun when the job completes.

A runtime without a job context (``runtime.job_context is None`` — every
one-shot run) pays nothing: the hooks are a single attribute test on
paths that already do orders of magnitude more work.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class JobContext:
    """Per-job accounting attached to one runtime over a shared cluster."""

    #: service-assigned job identifier (stable across status queries)
    job_id: str = ""
    #: owning tenant (quota and fair-share accounting key)
    tenant: str = ""
    #: hard cap on this job's core-seconds (None = unlimited); mirrors
    #: :attr:`repro.runtime.config.RuntimeConfig.job_node_seconds_cap`
    node_seconds_cap: float | None = None

    #: core-seconds charged by leaf executions so far
    cpu_seconds: float = 0.0
    #: leaf tasks executed on the job's behalf
    leaves_executed: int = 0
    #: tasks placed by Algorithm 2 (local + remote)
    tasks_dispatched: int = 0
    #: tasks shipped to a non-origin process
    remote_dispatches: int = 0
    #: sticky flag: the cap was exceeded at some leaf boundary
    over_budget: bool = field(default=False)

    def on_dispatch(self, remote: bool) -> None:
        """One task placed by the scheduler for this job."""
        self.tasks_dispatched += 1
        if remote:
            self.remote_dispatches += 1

    def on_leaf(self, cost_seconds: float) -> None:
        """One leaf executed, charging ``cost_seconds`` of core time."""
        self.leaves_executed += 1
        self.cpu_seconds += cost_seconds
        if (
            self.node_seconds_cap is not None
            and self.cpu_seconds > self.node_seconds_cap
        ):
            self.over_budget = True

    def snapshot(self) -> dict:
        """JSON-ready view for service status responses."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "cpu_seconds": self.cpu_seconds,
            "leaves_executed": self.leaves_executed,
            "tasks_dispatched": self.tasks_dispatched,
            "remote_dispatches": self.remote_dispatches,
            "over_budget": self.over_budget,
        }
