"""Online runtime invariant sentinel (§2.5 properties, enforced in vivo).

The formal layer proves five properties of the execution model
(:mod:`repro.model.properties`); this module checks their runtime-level
analogues *while the implementation runs*, at the transition points where
a scheduler, lock-table, index, or resilience bug would violate them:

=====================  =====================================================
§2.5 property          runtime-level check (hook point)
=====================  =====================================================
single execution       each submitted :class:`TaskSpec` enters leaf
                       execution at most once (``on_task_start``)
satisfied reqs.        at dispatch the executing process owns the write
                       set, holds all accessed data locally, covers it
                       with its own locks, and nothing is still in flight
                       (``on_task_executing``)
exclusive writes       a granted write hold never overlaps another owner's
                       hold in any process's :class:`LockTable`, and no
                       remote address space holds bytes of the written
                       region (``on_locks_acquired`` / ``on_task_executing``
                       / periodic scan)
data preservation      the global owned coverage of every live item never
                       shrinks except through *destroy* or node failure,
                       and every fragment payload carries exactly
                       ``region_bytes(payload.region)`` bytes across
                       migrations, checkpoints, and restores
                       (periodic scan / ``on_payload_*`` / ``on_restore``)
termination            the engine draining with queued/active tasks, held
                       locks, or in-flight data is a detectable wedge
                       (:meth:`RuntimeSentinel.check_terminal`; ``wait()``
                       already raises on a drained-but-incomplete queue)
=====================  =====================================================

The sentinel is opt-in and always-on once attached: it registers as a
:class:`~repro.sim.engine.SimEngine` listener and runs a full coherence
scan every ``scan_stride`` events plus whenever ``runtime.wait`` reaches a
barrier.  Violations become structured :class:`Violation` reports (item,
region, holders, simulated timestamp, task provenance), surface as
``sentinel.*`` counters in ``runtime.metrics``, and — in strict mode —
raise :class:`SentinelViolationError` at the exact event that broke the
invariant.

Enable it per-runtime (``RuntimeSentinel(runtime).attach()``), process-wide
(:func:`enable_globally`, used by the ``--sentinel`` bench flag), or for a
whole test run (``REPRO_SENTINEL=1``, consumed by ``tests/conftest.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.items.base import DataItem, FragmentPayload
from repro.regions.bounds import NO_BOUNDS, bounds_disjoint, corner_bounds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.resilience import Checkpoint
    from repro.runtime.runtime import AllScaleRuntime
    from repro.runtime.tasks import TaskSpec


class SentinelViolationError(AssertionError):
    """A runtime-level §2.5 invariant does not hold (strict mode)."""


@dataclass(frozen=True)
class Violation:
    """Structured report of one failed runtime invariant check."""

    #: which invariant failed: ``single_execution``, ``satisfied_requirements``,
    #: ``exclusive_writes``, ``lock_table_race``, ``data_preservation``,
    #: ``payload_bytes``, ``index_coherence``, ``replica_coherence``,
    #: ``transfer_plan``, ``termination``
    check: str
    message: str
    #: simulated time at which the violation was observed
    sim_time: float
    #: name of the data item involved, if any
    item: str | None = None
    #: offending region (repr'd lazily by the caller), if any
    region: Any = None
    #: ``(pid, owner-name, "W"/"R")`` triples of the holds involved
    holders: tuple = ()
    #: provenance: task name(s) active at the violating process
    task: str | None = None

    def __str__(self) -> str:
        parts = [f"[{self.check}] t={self.sim_time:.6g}s: {self.message}"]
        if self.item is not None:
            parts.append(f"item={self.item!r}")
        if self.region is not None:
            parts.append(f"region={self.region!r}")
        if self.holders:
            parts.append(f"holders={list(self.holders)!r}")
        if self.task is not None:
            parts.append(f"task={self.task!r}")
        return " ".join(parts)


@dataclass
class SentinelConfig:
    """Behaviour knobs of the sentinel."""

    #: raise :class:`SentinelViolationError` at the first violation
    strict: bool = True
    #: run the full coherence scan every N engine events (0 disables the
    #: periodic scan; barrier scans in ``runtime.wait`` still run)
    scan_stride: int = 4096
    #: deep-verify every Nth leaf-task dispatch (requirements at
    #: ``on_task_executing``, double grants at ``on_locks_acquired``); the
    #: cheap hooks (single execution, payload bytes, ownership updates)
    #: always run.  1 = exhaustive (the test default).
    task_stride: int = 1

    @classmethod
    def bench_profile(cls) -> "SentinelConfig":
        """Low-overhead profile for performance runs (``--sentinel``).

        Samples the per-task deep verification and spaces the periodic
        scans out, the same trade production race detectors make; the
        barrier scans in ``runtime.wait`` still verify every invariant
        over the final state of each run.
        """
        return cls(strict=False, scan_stride=65536, task_stride=16)


# shared with the runtime's write-intent reservation; see the module
# docstring of :mod:`repro.regions.bounds` for the rejection semantics
_NO_BOUNDS = NO_BOUNDS
_bounds_disjoint = bounds_disjoint


# -- process-wide enablement (bench --sentinel, REPRO_SENTINEL=1) ---------------

#: explicit-off marker: distinguishes "never configured, fall back to the
#: environment variable" (None) from "switched off programmatically"
_DISABLED = object()
_global_config: object = None
#: sentinels created while global enablement was active (drained by the
#: test fixture and the bench reporter)
_created: list["RuntimeSentinel"] = []


def enable_globally(config: SentinelConfig | None = None) -> None:
    """Attach a sentinel to every :class:`AllScaleRuntime` created from now on."""
    global _global_config
    _global_config = config or SentinelConfig()
    _created.clear()


def disable_globally() -> None:
    """Switch auto-attachment off, overriding ``REPRO_SENTINEL`` too.

    Fault-injection tests use this: they build broken runtime states on
    purpose and attach their own non-strict sentinels.
    """
    global _global_config
    _global_config = _DISABLED


def reset_global() -> None:
    """Back to the default: enabled iff ``REPRO_SENTINEL`` is set."""
    global _global_config
    _global_config = None


def global_config() -> SentinelConfig | None:
    """Active process-wide config, if any (env var ``REPRO_SENTINEL`` counts)."""
    if _global_config is _DISABLED:
        return None
    if _global_config is not None:
        return _global_config  # type: ignore[return-value]
    if os.environ.get("REPRO_SENTINEL", "0") not in ("", "0"):
        return SentinelConfig()
    return None


def drain_created() -> list["RuntimeSentinel"]:
    """Return and forget the sentinels auto-attached since the last drain."""
    out, _created[:] = list(_created), []
    return out


class RuntimeSentinel:
    """Continuously validates one runtime against the §2.5 properties."""

    def __init__(
        self,
        runtime: "AllScaleRuntime",
        config: SentinelConfig | None = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or SentinelConfig()
        self.violations: list[Violation] = []
        #: total individual invariant checks evaluated
        self.checks = 0
        #: full coherence scans executed
        self.scans = 0
        self._attached = False
        self._events_seen = 0
        self._tasks_seen = 0
        self._grants_seen = 0
        #: id(region) -> (region ref, bounds) — the ref pins the id
        self._bounds_cache: dict[int, tuple[Any, Any]] = {}
        #: items currently tracked (registered and not destroyed)
        self._items: set[DataItem] = set()
        #: id(task) -> (task ref, pid) — the ref pins the id
        self._started: dict[int, tuple[Any, int]] = {}
        #: per-item global owned coverage at the last consistent observation
        self._coverage: dict[DataItem, Any] = {}
        #: id(snapshot) -> (snapshot ref, {item name: (region, bytes)})
        self._checkpoints: dict[int, tuple[Any, dict[str, tuple[Any, int]]]] = {}

    # -- lifecycle -----------------------------------------------------------------

    def attach(self) -> "RuntimeSentinel":
        """Hook the runtime's components and event loop; returns self."""
        if self._attached:
            return self
        runtime = self.runtime
        if runtime.sentinel is not None and runtime.sentinel is not self:
            raise RuntimeError("runtime already has a sentinel attached")
        runtime.sentinel = self
        runtime.index.sentinel = self
        runtime.engine.add_listener(self._on_event)
        for item in runtime.items:
            self.on_item_registered(item)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.runtime.engine.remove_listener(self._on_event)
        if self.runtime.index.sentinel is self:
            self.runtime.index.sentinel = None
        if self.runtime.sentinel is self:
            self.runtime.sentinel = None
        self._attached = False

    # -- reporting -----------------------------------------------------------------

    def _report(
        self,
        check: str,
        message: str,
        *,
        item: DataItem | None = None,
        region: Any = None,
        holders: tuple = (),
        task: str | None = None,
    ) -> None:
        violation = Violation(
            check=check,
            message=message,
            sim_time=self.runtime.now,
            item=item.name if item is not None else None,
            region=region,
            holders=holders,
            task=task,
        )
        self.violations.append(violation)
        metrics = self.runtime.metrics
        metrics.incr("sentinel.violations")
        metrics.incr(f"sentinel.violations.{check}")
        if self.config.strict:
            raise SentinelViolationError(str(violation))

    def _check(self) -> None:
        self.checks += 1

    def _bounds(self, region):
        """Bounding corners of ``region``, cached by instance identity.

        Regions flowing through the hot paths are interned, so identity is
        a stable key; the cached entry pins the instance to keep it so.
        """
        cache = self._bounds_cache
        key = id(region)
        entry = cache.get(key)
        if entry is not None and entry[0] is region:
            return entry[1]
        out = corner_bounds(region)
        if len(cache) > 16384:
            cache.clear()
        cache[key] = (region, out)
        return out

    def report_lines(self) -> list[str]:
        lines = [
            f"sentinel: {self.checks} checks, {self.scans} scans, "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return lines

    def _active_tasks(self, pid: int) -> str | None:
        """Provenance: names of tasks currently holding locks at ``pid``."""
        names = sorted(
            {
                getattr(h.owner, "name", repr(h.owner))
                for h in self.runtime.process(pid).locks._holds
            }
        )
        return ", ".join(names) if names else None

    @staticmethod
    def _hold_info(pid: int, hold) -> tuple:
        return (pid, getattr(hold.owner, "name", repr(hold.owner)),
                "W" if hold.write else "R")

    # -- event-loop hook -----------------------------------------------------------

    def _on_event(self) -> None:
        stride = self.config.scan_stride
        if stride <= 0:
            return
        self._events_seen += 1
        if self._events_seen % stride == 0:
            self.verify_all()

    # -- item lifecycle hooks --------------------------------------------------------

    def on_item_registered(self, item: DataItem) -> None:
        self._items.add(item)
        self._coverage.setdefault(item, item.empty_region())

    def on_item_destroyed(self, item: DataItem) -> None:
        """Sanctioned coverage drop: the *destroy* action."""
        self._items.discard(item)
        self._coverage.pop(item, None)

    def on_process_failed(self, pid: int) -> None:
        """Sanctioned coverage drop: a crashed node loses its data."""
        for item in self._items:
            self._coverage[item] = self._global_owned(item)

    # -- task lifecycle hooks --------------------------------------------------------

    def on_task_start(self, task: "TaskSpec", pid: int) -> None:
        """Single execution: no task enters leaf execution twice."""
        self._check()
        previous = self._started.get(id(task))
        if previous is not None:
            self._report(
                "single_execution",
                f"task {task.name!r} started at process {pid} but already "
                f"started at process {previous[1]}",
                task=task.name,
            )
            return
        self._started[id(task)] = (task, pid)

    def on_task_executing(self, task: "TaskSpec", pid: int) -> None:
        """Satisfied requirements + exclusive writes at the start rule."""
        self._tasks_seen += 1
        stride = self.config.task_stride
        if stride > 1 and self._tasks_seen % stride:
            return
        runtime = self.runtime
        manager = runtime.process(pid).data_manager
        locks = runtime.process(pid).locks
        for item in task.accessed_items_ordered():
            self._check()
            write = task.write_region(item)
            accessed = task.accessed_region(item)
            if not write.is_empty():
                write_bounds = self._bounds(write)
                if not manager.owned_region(item).covers(write):
                    self._report(
                        "satisfied_requirements",
                        f"task {task.name!r} executing at process {pid} "
                        "without owning its write set",
                        item=item,
                        region=write.difference(manager.owned_region(item)),
                        task=task.name,
                    )
                for other, region in runtime.replica_holders(item).items():
                    if other == pid:
                        continue
                    if _bounds_disjoint(write_bounds, self._bounds(region)):
                        continue
                    if region.overlaps(write):
                        self._report(
                            "exclusive_writes",
                            f"write set of {task.name!r} (process {pid}) is "
                            f"replicated at process {other}",
                            item=item,
                            region=region.intersect(write),
                            task=task.name,
                        )
                # cross-process lock exclusion on the write set
                for other_proc in runtime.processes:
                    if other_proc.pid == pid:
                        continue
                    for hold in other_proc.locks._holds:
                        if hold.item is not item:
                            continue
                        if _bounds_disjoint(
                            write_bounds, self._bounds(hold.region)
                        ):
                            continue
                        if hold.region.overlaps(write):
                            self._report(
                                "exclusive_writes",
                                f"write set of {task.name!r} (process {pid}) "
                                f"is locked at process {other_proc.pid}",
                                item=item,
                                region=hold.region.intersect(write),
                                holders=(self._hold_info(other_proc.pid, hold),),
                                task=task.name,
                            )
            if not manager.present_region(item).covers(accessed):
                self._report(
                    "satisfied_requirements",
                    f"task {task.name!r} executing at process {pid} with "
                    "accessed data absent",
                    item=item,
                    region=accessed.difference(manager.present_region(item)),
                    task=task.name,
                )
            if manager.in_flight_region(item).overlaps(accessed):
                self._report(
                    "satisfied_requirements",
                    f"task {task.name!r} executing at process {pid} while "
                    "its data is still in flight",
                    item=item,
                    region=manager.in_flight_region(item).intersect(accessed),
                    task=task.name,
                )
            # the task's own locks must pin the accessed region
            held_read = item.empty_region()
            held_write = item.empty_region()
            for hold in locks._holds:
                if hold.owner is task and hold.item is item:
                    if hold.write:
                        held_write = held_write.union(hold.region)
                    else:
                        held_read = held_read.union(hold.region)
            if not held_write.covers(write):
                self._report(
                    "satisfied_requirements",
                    f"task {task.name!r} executing at process {pid} without "
                    "a write lock on its write set",
                    item=item,
                    region=write.difference(held_write),
                    task=task.name,
                )
            if not held_write.union(held_read).covers(accessed):
                self._report(
                    "satisfied_requirements",
                    f"task {task.name!r} executing at process {pid} without "
                    "locks covering its accessed set",
                    item=item,
                    region=accessed.difference(held_write.union(held_read)),
                    task=task.name,
                )

    def on_task_finish(self, task: "TaskSpec", pid: int) -> None:
        self._check()

    # -- lock-table hooks -------------------------------------------------------------

    def on_locks_acquired(self, pid: int, owner: object) -> None:
        """Double-grant detection: a fresh grant never conflicts locally.

        Cross-process exclusion is deliberately *not* checked here — a
        transient grant that fails requirement re-verification is released
        within the same event; it is checked at ``on_task_executing`` and
        by the periodic scan, which only observe settled states.
        """
        self._grants_seen += 1
        stride = self.config.task_stride
        if stride > 1 and self._grants_seen % stride:
            return
        self._check()
        table = self.runtime.process(pid).locks
        for hold in table._holds:
            if hold.owner is not owner:
                continue
            hold_bounds = self._bounds(hold.region)
            for other in table._holds:
                if other.owner is owner or hold.item is not other.item:
                    continue
                if not (hold.write or other.write):
                    continue
                if _bounds_disjoint(hold_bounds, self._bounds(other.region)):
                    continue
                if hold.region.overlaps(other.region):
                    self._report(
                        "lock_table_race",
                        f"lock table of process {pid} granted overlapping "
                        "holds to distinct owners",
                        item=hold.item,
                        region=hold.region.intersect(other.region),
                        holders=(
                            self._hold_info(pid, hold),
                            self._hold_info(pid, other),
                        ),
                        task=getattr(owner, "name", None),
                    )

    # -- data-movement hooks ----------------------------------------------------------

    def on_payload_export(
        self, pid: int, item: DataItem, payload: FragmentPayload
    ) -> None:
        self._check_payload("export", pid, item, payload)

    def on_payload_import(
        self, pid: int, item: DataItem, payload: FragmentPayload
    ) -> None:
        self._check_payload("import", pid, item, payload)

    def _check_payload(
        self, direction: str, pid: int, item: DataItem, payload: FragmentPayload
    ) -> None:
        """Byte accounting: a payload carries exactly its region's bytes."""
        self._check()
        expected = item.region_bytes(payload.region)
        if payload.nbytes != expected:
            self._report(
                "payload_bytes",
                f"{direction} at process {pid} carries {payload.nbytes} bytes "
                f"for a {expected}-byte region",
                item=item,
                region=payload.region,
                task=self._active_tasks(pid),
            )

    def on_coalesced_transfer(
        self,
        src: int,
        dst: int,
        item: DataItem,
        payload: FragmentPayload,
        pieces: list,
        sizes: list[int],
    ) -> None:
        """Byte preservation over a coalesced bulk payload.

        The constituent pieces must be pairwise disjoint, their union must
        be exactly the payload's region, and the per-piece byte sizes must
        sum to the payload's bytes — i.e. coalescing moved the very same
        elements the individual messages would have, once each.
        """
        self._check()
        union = item.empty_region()
        for i, piece in enumerate(pieces):
            if union.overlaps(piece):
                self._report(
                    "payload_bytes",
                    f"coalesced transfer {src}->{dst} carries overlapping "
                    "constituent pieces",
                    item=item,
                    region=union.intersect(piece),
                )
            union = union.union(piece)
            expected = item.region_bytes(piece)
            if i < len(sizes) and sizes[i] != expected:
                self._report(
                    "payload_bytes",
                    f"coalesced transfer {src}->{dst} accounts {sizes[i]} "
                    f"bytes for a {expected}-byte constituent",
                    item=item,
                    region=piece,
                )
        if not union.same_elements(payload.region):
            self._report(
                "payload_bytes",
                f"coalesced transfer {src}->{dst} payload region is not the "
                "union of its constituent pieces",
                item=item,
                region=union.difference(payload.region).union(
                    payload.region.difference(union)
                ),
            )
        expected_total = item.region_bytes(payload.region)
        if sum(sizes) != expected_total or payload.nbytes != expected_total:
            self._report(
                "payload_bytes",
                f"coalesced transfer {src}->{dst} carries {payload.nbytes} "
                f"payload bytes billed as {sum(sizes)} for a "
                f"{expected_total}-byte region",
                item=item,
                region=payload.region,
            )

    def on_plan_finished(self, plan) -> None:
        """Audit a finished transfer plan: moved ⊆ planned, bytes honest.

        Re-fetches (the same elements moved twice within one plan, e.g.
        after a competing writer invalidated a fresh replica) are legal
        and surface as ``comms.refetched_bytes`` — only movement that was
        never planned at all, or misaccounted bytes, is a violation.
        """
        for step in plan.moved:
            if step.kind == "allocate":
                continue
            self._check()
            expected = step.item.region_bytes(step.region)
            if step.nbytes != expected:
                self._report(
                    "transfer_plan",
                    f"plan {plan.purpose!r} recorded {step.nbytes} bytes "
                    f"moved for a {expected}-byte region",
                    item=step.item,
                    region=step.region,
                    task=plan.purpose,
                )
        for item in plan.items():
            self._check()
            stray = plan.moved_region(item).difference(
                plan.planned_region(item)
            )
            if not stray.is_empty():
                self._report(
                    "transfer_plan",
                    f"plan {plan.purpose!r} moved data it never planned",
                    item=item,
                    region=stray,
                    task=plan.purpose,
                )

    def on_ownership_update(self, item: DataItem, pid: int, region) -> None:
        """Index/data-manager leaf coherence at every ownership change."""
        if item not in self._items:
            return
        self._check()
        runtime = self.runtime
        if pid >= runtime.num_processes:
            return
        owned = runtime.process(pid).data_manager.owned_region(item)
        if not owned.same_elements(region):
            self._report(
                "index_coherence",
                f"ownership update for process {pid} recorded a region "
                "different from the data manager's owned region",
                item=item,
                region=owned.difference(region).union(region.difference(owned)),
                task=self._active_tasks(pid),
            )

    # -- resilience hooks ---------------------------------------------------------------

    def on_checkpoint(self, snapshot: "Checkpoint") -> None:
        """Record what the checkpoint must preserve, byte-accounted."""
        self._check()
        recorded: dict[str, tuple[Any, int]] = {}
        by_name = {item.name: item for item in self.runtime.items}
        for name, entries in snapshot.payloads.items():
            item = by_name.get(name)
            if item is None:
                continue
            region = item.empty_region()
            total = 0
            for _pid, payload in entries:
                region = region.union(payload.region)
                total += payload.nbytes
            recorded[name] = (region, total)
        self._checkpoints[id(snapshot)] = (snapshot, recorded)

    def on_restore(self, snapshot: "Checkpoint") -> None:
        """Data preservation across restore: nothing checkpointed is lost."""
        entry = self._checkpoints.get(id(snapshot))
        by_name = {item.name: item for item in self.runtime.items}
        for name, entries in snapshot.payloads.items():
            item = by_name.get(name)
            if item is None:
                continue
            self._check()
            region = item.empty_region()
            total = 0
            for _pid, payload in entries:
                region = region.union(payload.region)
                total += payload.nbytes
            if entry is not None:
                recorded_region, recorded_bytes = entry[1].get(
                    name, (item.empty_region(), 0)
                )
                lost = recorded_region.difference(region)
                if not lost.is_empty() or total != recorded_bytes:
                    self._report(
                        "data_preservation",
                        f"restore of {name!r} received {total} bytes over "
                        f"{region.size()} elements but the checkpoint "
                        f"recorded {recorded_bytes} bytes over "
                        f"{recorded_region.size()} elements",
                        item=item,
                        region=lost,
                    )
            present = item.empty_region()
            for process in self.runtime.processes:
                present = present.union(
                    process.data_manager.present_region(item)
                )
            missing = region.difference(present)
            if not missing.is_empty():
                self._report(
                    "data_preservation",
                    f"{missing.size()} restored element(s) of {name!r} are "
                    "present nowhere after the restore",
                    item=item,
                    region=missing,
                )

    def on_recovery(self, snapshot: "Checkpoint") -> None:
        """Partial restart after node loss: nothing checkpointed stays lost.

        Unlike a full restore, recovery touches only the lost regions —
        survivors keep their (newer) data — so the check is: every element
        the checkpoint *originally* covered is present somewhere again.
        Comparing against the coverage recorded at checkpoint time (not
        the snapshot's current content) catches checkpoint payloads that
        were dropped or corrupted in between.
        """
        entry = self._checkpoints.get(id(snapshot))
        by_name = {item.name: item for item in self.runtime.items}
        names = set(snapshot.payloads)
        if entry is not None:
            names |= set(entry[1])
        for name in sorted(names):
            item = by_name.get(name)
            if item is None:
                continue
            self._check()
            if entry is not None:
                expected = entry[1].get(name, (item.empty_region(), 0))[0]
            else:
                expected = item.empty_region()
                for _pid, payload in snapshot.payloads.get(name, []):
                    expected = expected.union(payload.region)
            present = item.empty_region()
            for process in self.runtime.processes:
                present = present.union(
                    process.data_manager.present_region(item)
                )
                if not process.failed:
                    # owned-but-in-flight at a live process is bytes on
                    # the wire to a live owner (a concurrent migration
                    # overlapping the recovery), not lost data — same
                    # allowance the coherence scan makes
                    present = present.union(
                        process.data_manager.in_flight_region(item)
                    )
            missing = expected.difference(present)
            if not missing.is_empty():
                self._report(
                    "data_preservation",
                    f"{missing.size()} checkpointed element(s) of {name!r} "
                    "remain lost after recovery",
                    item=item,
                    region=missing,
                )

    # -- full coherence scan -------------------------------------------------------------

    def _global_owned(self, item: DataItem):
        region = item.empty_region()
        for process in self.runtime.processes:
            region = region.union(process.data_manager.owned_region(item))
        return region

    def verify_all(self) -> None:
        """One full scan of every cross-component invariant.

        Runs at every ``scan_stride`` engine events, at each ``wait()``
        barrier, and on demand (tests, fixture teardown).  Scans observe
        only event-boundary states, which the runtime keeps transiently
        consistent (ownership handover is atomic, transient lock grants
        never cross a yield).
        """
        self.scans += 1
        self.runtime.metrics.incr("sentinel.scans")
        self._scan_items()
        self._scan_locks()

    def _scan_items(self) -> None:
        runtime = self.runtime
        index = runtime.index
        for item in sorted(self._items, key=lambda i: i.name):
            self._check()
            seen = item.empty_region()
            for process in runtime.processes:
                manager = process.data_manager
                owned = manager.owned_region(item)
                # pairwise-disjoint ownership (exclusive writes substrate)
                overlap = seen.intersect(owned)
                if not overlap.is_empty():
                    self._report(
                        "index_coherence",
                        f"ownership overlaps between processes at {process.pid}",
                        item=item,
                        region=overlap,
                    )
                seen = seen.union(owned)
                # leaf coherence: the index mirrors the data manager
                indexed = index.owned_region(item, process.pid)
                if not indexed.same_elements(owned):
                    self._report(
                        "index_coherence",
                        f"index leaf for process {process.pid} disagrees "
                        "with the data manager",
                        item=item,
                        region=indexed.difference(owned).union(
                            owned.difference(indexed)
                        ),
                    )
                # owned bytes are present unless still in flight
                missing = owned.difference(manager.present_region(item))
                if not missing.difference(
                    manager.in_flight_region(item)
                ).is_empty():
                    self._report(
                        "data_preservation",
                        f"process {process.pid} owns data it neither holds "
                        "nor awaits",
                        item=item,
                        region=missing,
                    )
                # replica registry mirrors fragment state
                registered = runtime.replica_holders(item).get(
                    process.pid, item.empty_region()
                )
                actual = manager.replica_region(item)
                if not registered.same_elements(actual):
                    self._report(
                        "replica_coherence",
                        f"replica registry for process {process.pid} "
                        "disagrees with its fragment",
                        item=item,
                        region=registered.difference(actual).union(
                            actual.difference(registered)
                        ),
                    )
            # hierarchy internal consistency: every level is the union of
            # its children; the root is the global coverage
            for level in range(2, index.levels + 1):
                span = 1 << (level - 1)
                for root in range(0, runtime.num_processes, span):
                    left, right = index.children_of(level, root)
                    merged = index.covered(item, level - 1, left)
                    if right < index.num_processes:
                        merged = merged.union(
                            index.covered(item, level - 1, right)
                        )
                    node = index.covered(item, level, root)
                    if not node.same_elements(merged):
                        self._report(
                            "index_coherence",
                            f"index node (level {level}, root {root}) is not "
                            "the union of its children",
                            item=item,
                        )
            # data preservation: global coverage is monotone between
            # sanctioned drops (destroy, node failure)
            previous = self._coverage.get(item)
            if previous is not None:
                lost = previous.difference(seen)
                if not lost.is_empty():
                    self._report(
                        "data_preservation",
                        f"{lost.size()} element(s) vanished without an "
                        "explicit destroy or node failure",
                        item=item,
                        region=lost,
                    )
            self._coverage[item] = seen

    def _scan_locks(self) -> None:
        """Reader/writer exclusion within and across all lock tables."""
        runtime = self.runtime
        all_holds: list[tuple[int, Any, Any]] = []
        for process in runtime.processes:
            for hold in process.locks._holds:
                all_holds.append(
                    (process.pid, hold, self._bounds(hold.region))
                )
        for i, (pid_a, a, bounds_a) in enumerate(all_holds):
            self._check()
            item_a, owner_a, write_a = a.item, a.owner, a.write
            for pid_b, b, bounds_b in all_holds[i + 1:]:
                if item_a is not b.item:
                    continue
                if owner_a is b.owner and pid_a == pid_b:
                    continue
                if not (write_a or b.write):
                    continue
                if _bounds_disjoint(bounds_a, bounds_b):
                    continue
                if a.region.overlaps(b.region):
                    check = (
                        "lock_table_race" if pid_a == pid_b
                        else "exclusive_writes"
                    )
                    self._report(
                        check,
                        "conflicting lock holds "
                        + (
                            f"within process {pid_a}"
                            if pid_a == pid_b
                            else f"across processes {pid_a} and {pid_b}"
                        ),
                        item=a.item,
                        region=a.region.intersect(b.region),
                        holders=(
                            self._hold_info(pid_a, a),
                            self._hold_info(pid_b, b),
                        ),
                    )

    # -- termination analogue --------------------------------------------------------

    def check_terminal(self) -> None:
        """Assert the runtime is quiescent: no queued/active work, no locks,
        no in-flight data (Def. 2.11's terminal shape, runtime level)."""
        runtime = self.runtime
        for process in runtime.processes:
            self._check()
            if process.queue or process.active:
                self._report(
                    "termination",
                    f"process {process.pid} still has "
                    f"{len(process.queue)} queued / {process.active} active "
                    "task(s) at a supposed barrier",
                )
            if process.locks.active_holds:
                self._report(
                    "termination",
                    f"process {process.pid} still holds "
                    f"{process.locks.active_holds} lock(s)",
                    task=self._active_tasks(process.pid),
                )
            for item in self._items:
                if not process.data_manager.in_flight_region(item).is_empty():
                    self._report(
                        "termination",
                        f"process {process.pid} still awaits in-flight data",
                        item=item,
                    )


def attach_from_global(runtime: "AllScaleRuntime") -> None:
    """Auto-attach a sentinel if process-wide enablement is active."""
    config = global_config()
    if config is None:
        return
    sentinel = RuntimeSentinel(runtime, config).attach()
    _created.append(sentinel)
