"""Region-granular read/write lock table (per process).

Implements the ``Lr`` / ``Lw`` bookkeeping of the model at the
implementation level: a task acquires read locks on its read regions and
write locks on its write regions before executing, holds them for the
duration (satisfied-requirements property), and releases them on
completion (rule *end*).

Unlike the specification level — where overlapping write locks are not
formally excluded (see the faithfulness notes in
:mod:`repro.model.transitions`) — the implementation enforces
reader/writer exclusion per element: writers conflict with any overlapping
lock, readers only with overlapping writers.  Conflicting acquisitions
queue on a future and are retried in FIFO order as locks drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.items.base import DataItem
from repro.regions.base import Region
from repro.verify import monitor as _verify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Future, SimEngine


@dataclass
class _Hold:
    owner: object
    item: DataItem
    region: Region
    write: bool


class LockTable:
    """All locks held within one address space."""

    def __init__(self, engine: "SimEngine", pid: int = -1) -> None:
        self.engine = engine
        self.pid = pid
        self._holds: list[_Hold] = []
        self._waiters: list["Future"] = []

    # -- queries -------------------------------------------------------------------

    def write_locked(self, item: DataItem, region: Region) -> bool:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("locks", self.pid, item.name), region)
        return any(
            h.write and h.item is item and h.region.overlaps(region)
            for h in self._holds
        )

    def any_locked(self, item: DataItem, region: Region) -> bool:
        monitor = _verify.current
        if monitor is not None:
            monitor.sync_acquire(("locks", self.pid, item.name), region)
        return any(
            h.item is item and h.region.overlaps(region) for h in self._holds
        )

    def conflicts(
        self,
        reads: dict[DataItem, Region],
        writes: dict[DataItem, Region],
        owner: object = None,
    ) -> bool:
        """Would acquiring these locks conflict with *other* holders?

        ``owner``'s own existing holds never count as conflicts: a
        re-entrant acquisition by the owner of the overlapping hold must
        not self-deadlock.  Pass ``owner=None`` (the default) to treat
        every hold as foreign.
        """
        monitor = _verify.current
        if monitor is not None:
            for item, region in writes.items():
                if not region.is_empty():
                    monitor.sync_acquire(
                        ("locks", self.pid, item.name), region
                    )
            for item, region in reads.items():
                if not region.is_empty():
                    monitor.sync_acquire(
                        ("locks", self.pid, item.name), region
                    )
        for item, region in writes.items():
            if region.is_empty():
                continue
            for hold in self._holds:
                if (
                    hold.owner is not owner
                    and hold.item is item
                    and hold.region.overlaps(region)
                ):
                    return True
        for item, region in reads.items():
            if region.is_empty():
                continue
            for hold in self._holds:
                if (
                    hold.owner is not owner
                    and hold.write
                    and hold.item is item
                    and hold.region.overlaps(region)
                ):
                    return True
        return False

    # -- acquisition --------------------------------------------------------------

    def try_acquire(
        self,
        owner: object,
        reads: dict[DataItem, Region],
        writes: dict[DataItem, Region],
    ) -> bool:
        """Atomically acquire all locks, or none."""
        if self.conflicts(reads, writes, owner=owner):
            return False
        monitor = _verify.current
        if monitor is not None:
            # publish the new lock state: later guard checks that observe
            # these holds (or their absence) order after this acquisition
            for item, region in writes.items():
                if not region.is_empty():
                    monitor.sync_release(
                        ("locks", self.pid, item.name), region
                    )
            for item, region in reads.items():
                if not region.is_empty():
                    monitor.sync_release(
                        ("locks", self.pid, item.name), region
                    )
        for item, region in writes.items():
            if not region.is_empty():
                # interned hold regions make the per-hold overlap checks
                # above hit the kernel memo-cache by operand identity
                self._holds.append(
                    _Hold(owner, item, region.interned(), write=True)
                )
        for item, region in reads.items():
            if not region.is_empty():
                # read∩write overlap within one task is covered by its own
                # write lock; lock only the read-exclusive part
                effective = region.difference(
                    writes.get(item, item.empty_region())
                )
                if not effective.is_empty():
                    self._holds.append(
                        _Hold(owner, item, effective, write=False)
                    )
        return True

    def release(self, owner: object) -> None:
        """Drop all locks of ``owner`` and wake queued waiters."""
        before = len(self._holds)
        monitor = _verify.current
        if monitor is not None:
            for hold in self._holds:
                if hold.owner is owner:
                    monitor.sync_release(
                        ("locks", self.pid, hold.item.name), hold.region
                    )
        self._holds = [h for h in self._holds if h.owner is not owner]
        if len(self._holds) != before and self._waiters:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                waiter.complete(None)

    def wait_for_change(self) -> "Future":
        """Future completing the next time any locks are released."""
        future = self.engine.future()
        self._waiters.append(future)
        return future

    @property
    def active_holds(self) -> int:
        return len(self._holds)

    def __repr__(self) -> str:
        return f"LockTable({len(self._holds)} holds, {len(self._waiters)} waiting)"
