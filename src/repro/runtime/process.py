"""Runtime processes: per-node task queues and workers (paper §3.2).

One :class:`RuntimeProcess` per cluster node, mirroring HPX's
process-per-node deployment.  Each process owns a task queue fed by the
scheduler, a lock table, and a data item manager.  Dequeued tasks are
handled by simulation coroutines; compute lands on the node's simulated
cores, so intra-node parallelism emerges from the core timelines while
data fetches overlap execution.

A task arrives together with the variant choice the policy made
(Algorithm 2 line 3): the *split* variant spawns child tasks that are
re-assigned through the scheduler; the *leaf* variant stages data through
the data item manager, takes region locks, executes, and completes its
treeture.

Optional work stealing ("tasks are stored within node-local queues ...
yet may be stolen by other nodes"): an idle process probes a random peer
and, if its queue is backed up, pulls half of it over the network.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Generator

from repro.runtime.data_manager import DataItemManager
from repro.runtime.locks import LockTable
from repro.runtime.tasks import TaskExecutionContext, TaskSpec, Treeture
from repro.verify import monitor as _verify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import AllScaleRuntime
    from repro.sim.node import SimNode


class RuntimeProcess:
    """One AllScale runtime process bound to one simulated node."""

    def __init__(
        self, runtime: "AllScaleRuntime", pid: int, node: "SimNode"
    ) -> None:
        self.runtime = runtime
        self.pid = pid
        self.node = node
        self.locks = LockTable(runtime.engine, pid=pid)
        self.data_manager = DataItemManager(self)
        self.queue: deque[tuple[TaskSpec, Treeture, str]] = deque()
        self.active = 0
        self.failed = False
        #: graceful scale-in in progress: still alive (finishes its active
        #: tasks, serves reads), but new placements route around it and
        #: late arrivals are forwarded to a survivor
        self.draining = False
        self.executed_leaves = 0
        self.executed_splits = 0
        self._dispatching = False
        self._slot_waiters: list = []
        self._rng = random.Random(runtime.config.seed * 7919 + pid)

    # -- queue ---------------------------------------------------------------------

    @property
    def max_concurrent(self) -> int:
        # leave headroom over the core count so data fetches overlap compute
        return self.node.num_cores * 2

    def enqueue(self, task: TaskSpec, treeture: Treeture, variant: str) -> None:
        if self.failed:
            raise RuntimeError(
                f"task {task.name!r} dispatched to failed process {self.pid}"
            )
        if self.draining:
            # a parcel that left before the drain began: forward it to the
            # survivor dispatch would pick now, synchronously — the drain
            # loop never sees it, so departure cannot strand queued work
            target = self.runtime._redirect_if_failed(self.pid)
            if target != self.pid:
                self.runtime.metrics.incr("elastic.forwarded_tasks")
                self.runtime.process(target).enqueue(task, treeture, variant)
                return
        tracer = self.runtime.tracer
        if tracer is not None and variant != "split":
            tracer.on_enqueue(
                treeture, task.name, self.pid, self.runtime.engine.now
            )
        self.queue.append((task, treeture, variant))
        if (
            self.runtime.config.work_stealing
            and len(self.queue) > self.max_concurrent
        ):
            self.runtime.engine.spawn(self._offload_to_idle_peer())
        self._kick()

    def queue_length(self) -> int:
        return len(self.queue)

    def _kick(self) -> None:
        if not self._dispatching:
            self._dispatching = True
            self.runtime.engine.spawn(self._dispatch())

    def _dispatch(self) -> Generator:
        try:
            while self.queue:
                while self.active >= self.max_concurrent:
                    yield self._slot_free()
                if not self.queue:
                    break  # tasks were stolen while we waited for a slot
                entry = self.queue.popleft()
                self.active += 1
                self.runtime.engine.spawn(self._handle(*entry))
        finally:
            self._dispatching = False

    def _slot_free(self):
        future = self.runtime.engine.future()
        self._slot_waiters.append(future)
        return future

    def _release_slot(self) -> None:
        self.active -= 1
        if self._slot_waiters:
            self._slot_waiters.pop(0).complete(None)

    # -- task handling ---------------------------------------------------------------

    def _handle(
        self, task: TaskSpec, treeture: Treeture, variant: str
    ) -> Generator:
        cfg = self.runtime.config
        slot_released = False
        try:
            yield self.node.execute(cfg.task_start_overhead)
            if variant == "split" and task.splittable:
                children = task.splitter()  # type: ignore[misc]
                if not children:
                    raise RuntimeError(
                        f"splitter of {task.name!r} produced no children"
                    )
                yield self.node.execute(
                    cfg.task_spawn_overhead * len(children)
                )
                if cfg.comm_coalescing and len(children) > 1:
                    # co-scheduled siblings: one shared lookup, task
                    # parcels coalesced per destination
                    child_treetures = self.runtime.scheduler.assign_batch(
                        children, origin=self.pid
                    )
                else:
                    child_treetures = [
                        self.runtime.scheduler.assign(child, origin=self.pid)
                        for child in children
                    ]
                # a suspended parent occupies no core: free the slot before
                # awaiting children, or recursive fork-join would exhaust
                # all slots with waiting parents and deadlock
                self._release_slot()
                slot_released = True
                values = yield self.runtime.engine.all_of(
                    [t.future for t in child_treetures]
                )
                value = task.combiner(values) if task.combiner else values
                self.executed_splits += 1
                self.runtime.metrics.incr("proc.splits")
                treeture.complete(value)
            else:
                yield from self._run_leaf(
                    task, treeture, offload=(variant == "gpu")
                )
        finally:
            if not slot_released:
                self._release_slot()

    def _run_leaf(
        self, task: TaskSpec, treeture: Treeture, offload: bool = False
    ) -> Generator:
        tracer = self.runtime.tracer
        sentinel = self.runtime.sentinel
        now = self.runtime.engine.now
        if tracer is not None:
            tracer.on_start(treeture, now)
        if sentinel is not None:
            sentinel.on_task_start(task, self.pid)
        # stage data and take region locks.  Between staging completing and
        # the locks being granted other processes run, so the premises can
        # be invalidated again (a remote read re-replicates the write set;
        # a migration steals staged ownership) — hence stage, lock, then
        # *re-verify under lock* and restage on failure.  The verification
        # is synchronous: a failed round holds the locks for zero simulated
        # time, so no deadlock can form through it.  A write-intent
        # reservation covers the whole staging window: competing stagers
        # defer to older intents, which turns the restage/re-fetch
        # ping-pong between concurrent accessors of the same region from
        # a livelock into a bounded wait.
        intents = {
            item: task.write_region(item)
            for item in task.accessed_items_ordered()
            if not task.write_region(item).is_empty()
        }
        if intents:
            reads = {
                item: task.read_region(item)
                for item in task.accessed_items_ordered()
                if not task.read_region(item).is_empty()
            }
            self.runtime.register_write_intent(task, self.pid, intents, reads)
        try:
            for _attempt in range(16):
                yield from self.data_manager.ensure_for_task(task)
                if tracer is not None:
                    tracer.on_data_ready(treeture, self.runtime.engine.now)
                # take region locks; queue behind conflicting holders
                while not self.locks.try_acquire(task, task.reads, task.writes):
                    self.runtime.metrics.incr("proc.lock_waits")
                    yield self.locks.wait_for_change()
                if self.data_manager.requirements_hold(task):
                    break
                self.locks.release(task)
                self.runtime.metrics.incr("proc.restages")
            else:
                raise RuntimeError(
                    f"task {task.name!r} at process {self.pid} could not "
                    "hold its data requirements across lock acquisition "
                    "after repeated restaging (requirement thrashing?)"
                )
        finally:
            # the verified locks take over protection from here
            if intents:
                self.runtime.clear_write_intent(task)
        if tracer is not None:
            tracer.on_locks_held(treeture, self.runtime.engine.now)
        if sentinel is not None:
            sentinel.on_locks_acquired(self.pid, task)
            sentinel.on_task_executing(task, self.pid)
        monitor = _verify.current
        if monitor is not None:
            # the task body's accesses, recorded while the verified locks
            # are held (they protect the whole execution window)
            for item in task.accessed_items_ordered():
                write = task.write_region(item)
                if not write.is_empty():
                    monitor.frag_write(
                        self.pid, item, write, f"task:{task.name}"
                    )
                read = task.read_region(item).difference(write)
                if not read.is_empty():
                    monitor.frag_read(
                        self.pid, item, read, f"task:{task.name}"
                    )
        try:
            devices = self.runtime.cluster.accelerators[self.pid]
            if offload and devices and task.gpu_flops is not None:
                # GPU variant: ship the accessed data across the link, run
                # the kernel, bring the written data back
                device = min(devices, key=lambda d: d._compute_free_at)
                inbound = sum(
                    item.region_bytes(task.accessed_region(item))
                    for item in task.accessed_items()
                )
                outbound = sum(
                    item.region_bytes(task.write_region(item))
                    for item in task.accessed_items()
                )
                yield device.transfer(inbound)
                yield device.launch(task.gpu_flops)
                yield device.transfer(outbound)
                self.runtime.metrics.incr("proc.gpu_offloads")
            else:
                cost = self.node.flops_to_seconds(task.flops)
                if cost > 0:
                    yield self.node.execute(cost)
                job = self.runtime.job_context
                if job is not None:
                    job.on_leaf(cost)
            value = None
            if task.body is not None and (
                self.runtime.config.functional
                or getattr(task, "body_in_virtual", False)
            ):
                context = TaskExecutionContext(
                    self.pid,
                    task,
                    {
                        item: self.data_manager.fragment(item)
                        for item in task.accessed_items()
                    },
                )
                value = task.body(context)
        finally:
            self.locks.release(task)
        self.executed_leaves += 1
        self.runtime.metrics.incr("proc.leaves")
        if tracer is not None:
            tracer.on_finish(treeture, self.runtime.engine.now)
        if sentinel is not None:
            sentinel.on_task_finish(task, self.pid)
        treeture.complete(value)

    # -- work stealing -----------------------------------------------------------------

    def _offload_to_idle_peer(self) -> Generator:
        """Let an idle peer steal half of this backed-up queue.

        The paper's node-local queues "may be stolen by other nodes"; in
        the event-driven simulation the transfer is initiated when queue
        pressure appears (an idle node cannot wake itself), but the costs
        and the effect — half the queue moves, with per-task transfer
        messages — are those of a steal.
        """
        runtime = self.runtime
        if runtime.num_processes < 2:
            return
        probe = self._rng.randrange(runtime.num_processes - 1)
        if probe >= self.pid:
            probe += 1
        thief = runtime.process(probe)
        cfg = runtime.config
        if thief.failed or thief.draining:
            return  # corpses and leavers don't steal
        # steal handshake: probe + response
        yield runtime.network.send(probe, self.pid, cfg.control_message_bytes)
        if thief.failed or thief.draining:
            return  # the peer left while the probe travelled
        if thief.active > 0 or thief.queue_length() > 0:
            return  # peer is busy; nothing moves
        if self.queue_length() < 2:
            return
        loot_count = self.queue_length() // 2
        loot = [self.queue.pop() for _ in range(loot_count)]
        yield runtime.network.send(
            self.pid, probe, cfg.task_message_bytes * loot_count
        )
        runtime.metrics.incr("proc.steals")
        runtime.metrics.incr("proc.stolen_tasks", loot_count)
        for entry in reversed(loot):
            thief.queue.append(entry)
        thief._kick()

    def __repr__(self) -> str:
        return (
            f"RuntimeProcess(pid={self.pid}, queued={len(self.queue)}, "
            f"active={self.active})"
        )
