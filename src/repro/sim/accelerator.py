"""Simulated accelerators (GPUs) attached to cluster nodes.

The paper's introduction names "the offloading of computation to GPUs"
among the system-level features that depend on runtime control over data
distribution; the architecture model (Def. 2.8) explicitly includes GPUs
as compute units and device memories as address spaces.  This module
provides the simulation substrate: a device with its own compute timeline
and a host↔device link with PCIe-class latency/bandwidth, serialized like
a NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Future, SimEngine


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of one accelerator."""

    #: effective device compute rate (FLOP/s) for offloaded kernels
    flops: float = 4.0e12
    #: host↔device transfer bandwidth (bytes/s); ~PCIe 3.0 x16
    link_bandwidth: float = 12.0e9
    #: per-transfer latency (s): driver + DMA setup
    link_latency: float = 10.0e-6
    #: fixed kernel-launch overhead (s)
    launch_overhead: float = 8.0e-6

    def __post_init__(self) -> None:
        if self.flops <= 0 or self.link_bandwidth <= 0:
            raise ValueError("flops and link_bandwidth must be positive")
        if self.link_latency < 0 or self.launch_overhead < 0:
            raise ValueError("latencies must be >= 0")


class SimAccelerator:
    """One device: a serial compute queue plus a serial transfer link."""

    def __init__(
        self, engine: SimEngine, device_id: int, spec: AcceleratorSpec
    ) -> None:
        self.engine = engine
        self.device_id = device_id
        self.spec = spec
        self._compute_free_at = 0.0
        self._link_free_at = 0.0
        self.kernels_launched = 0
        self.bytes_transferred = 0.0

    def transfer(self, nbytes: float) -> Future:
        """Move ``nbytes`` across the host↔device link (either direction)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        engine = self.engine
        start = max(engine.now, self._link_free_at)
        finish = (
            start + self.spec.link_latency + nbytes / self.spec.link_bandwidth
        )
        self._link_free_at = finish
        self.bytes_transferred += nbytes
        done = engine.future()
        engine.schedule_at(finish, lambda: done.complete(engine.now))
        return done

    def launch(self, flops: float) -> Future:
        """Run a kernel of ``flops`` device work (kernels serialize)."""
        if flops < 0:
            raise ValueError(f"negative kernel size {flops}")
        engine = self.engine
        start = max(engine.now, self._compute_free_at)
        finish = start + self.spec.launch_overhead + flops / self.spec.flops
        self._compute_free_at = finish
        self.kernels_launched += 1
        done = engine.future()
        engine.schedule_at(finish, lambda: done.complete(engine.now))
        return done

    def offload_time_estimate(self, flops: float, nbytes: float) -> float:
        """Unloaded end-to-end estimate: H2D + kernel + D2H."""
        spec = self.spec
        return (
            2 * spec.link_latency
            + nbytes / spec.link_bandwidth  # combined in+out volume
            + spec.launch_overhead
            + flops / spec.flops
        )

    def __repr__(self) -> str:
        return (
            f"SimAccelerator(id={self.device_id}, "
            f"{self.spec.flops / 1e12:.1f} TFLOP/s)"
        )
