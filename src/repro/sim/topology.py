"""Fat-tree topology model.

The paper's testbed connects nodes "via Intel OmniPath in a fat tree
topology".  For latency purposes the relevant property of a fat tree is the
number of switch levels a message crosses: nodes under the same edge switch
communicate with one hop up and one down; farther nodes traverse additional
aggregation/core levels.  We model a ``radix``-ary tree of edge switches —
enough fidelity to make far traffic slightly more expensive than near
traffic without simulating individual links.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FatTreeTopology:
    """Groups of ``radix`` nodes share an edge switch; switches form a tree."""

    num_nodes: int
    radix: int = 16

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.radix < 2:
            raise ValueError(f"radix must be >= 2, got {self.radix}")

    def switch_hops(self, src: int, dst: int) -> int:
        """Number of switch traversals between two node indices.

        0 for loopback, 1 within an edge-switch group, and one extra
        up+down pair per additional tree level separating the groups.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        hops = 1
        a, b = src // self.radix, dst // self.radix
        while a != b:
            hops += 2
            a //= self.radix
            b //= self.radix
        return hops

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(
                f"node index {node} out of range 0..{self.num_nodes - 1}"
            )

    def max_hops(self) -> int:
        """Worst-case switch traversals in this topology."""
        if self.num_nodes == 1:
            return 0
        return self.switch_hops(0, self.num_nodes - 1)
