"""Cluster assembly.

A :class:`Cluster` bundles the event engine, the nodes, and the network —
the complete simulated counterpart of the paper's testbed.  The
:func:`meggie_like_spec` preset is calibrated so single-node application
throughput lands near the leftmost points of the paper's Fig. 7 (the
*shape* of the scaling curves is then produced by the model, not fitted).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.accelerator import AcceleratorSpec, SimAccelerator
from repro.sim.engine import SimEngine
from repro.sim.metrics import MetricRegistry
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import SimNode
from repro.sim.topology import FatTreeTopology


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a simulated cluster."""

    num_nodes: int
    cores_per_node: int = 20
    # effective (not peak) per-core rate for the memory-bound kernels the
    # paper evaluates; see meggie_like_spec for calibration notes
    flops_per_core: float = 2.4e9
    memory_per_node: float = 64e9
    network: NetworkConfig = field(default_factory=NetworkConfig)
    switch_radix: int = 16
    #: accelerators per node (0 = CPU-only, the paper's testbed)
    gpus_per_node: int = 0
    gpu: AcceleratorSpec = field(default_factory=AcceleratorSpec)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        return replace(self, num_nodes=num_nodes)


def meggie_like_spec(num_nodes: int) -> ClusterSpec:
    """Preset approximating one RRZE Meggie node and its interconnect.

    Each node has 2× Xeon E5-2630 v4 (2×10 cores) and 64 GB RAM.  The
    per-core effective rate of 2.4 GFLOP/s reflects a bandwidth-bound
    stencil (the paper's single-node stencil point is ≈48 GFLOPS per node),
    far below the chips' peak — stencils stream memory.
    """
    return ClusterSpec(
        num_nodes=num_nodes,
        cores_per_node=20,
        flops_per_core=2.4e9,
        memory_per_node=64e9,
        network=NetworkConfig(),
        switch_radix=16,
    )


class Cluster:
    """A fully assembled simulated cluster."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.engine = SimEngine()
        self.metrics = MetricRegistry()
        self.topology = FatTreeTopology(spec.num_nodes, spec.switch_radix)
        self.network = Network(
            self.engine, self.topology, spec.network, self.metrics
        )
        self.nodes = [
            SimNode(
                self.engine,
                node_id=i,
                cores=spec.cores_per_node,
                flops_per_core=spec.flops_per_core,
                memory_bytes=spec.memory_per_node,
                metrics=self.metrics,
            )
            for i in range(spec.num_nodes)
        ]
        self.accelerators: list[list[SimAccelerator]] = [
            [
                SimAccelerator(self.engine, device_id=k, spec=spec.gpu)
                for k in range(spec.gpus_per_node)
            ]
            for _ in range(spec.num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def run(self, until: float | None = None) -> int:
        """Drive the event loop; returns the number of events processed."""
        return self.engine.run(until=until)

    def total_cores(self) -> int:
        return self.spec.num_nodes * self.spec.cores_per_node

    def __repr__(self) -> str:
        return (
            f"Cluster({self.spec.num_nodes} nodes × "
            f"{self.spec.cores_per_node} cores, t={self.engine.now:.6g}s)"
        )
