"""Cluster assembly.

A :class:`Cluster` bundles the event engine, the nodes, and the network —
the complete simulated counterpart of the paper's testbed.  The
:func:`meggie_like_spec` preset is calibrated so single-node application
throughput lands near the leftmost points of the paper's Fig. 7 (the
*shape* of the scaling curves is then produced by the model, not fitted).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.accelerator import AcceleratorSpec, SimAccelerator
from repro.sim.engine import SimEngine
from repro.sim.metrics import MetricRegistry
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import SimNode
from repro.sim.topology import FatTreeTopology


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a simulated cluster."""

    num_nodes: int
    cores_per_node: int = 20
    # effective (not peak) per-core rate for the memory-bound kernels the
    # paper evaluates; see meggie_like_spec for calibration notes
    flops_per_core: float = 2.4e9
    memory_per_node: float = 64e9
    network: NetworkConfig = field(default_factory=NetworkConfig)
    switch_radix: int = 16
    #: accelerators per node (0 = CPU-only, the paper's testbed)
    gpus_per_node: int = 0
    gpu: AcceleratorSpec = field(default_factory=AcceleratorSpec)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        return replace(self, num_nodes=num_nodes)


def meggie_like_spec(num_nodes: int) -> ClusterSpec:
    """Preset approximating one RRZE Meggie node and its interconnect.

    Each node has 2× Xeon E5-2630 v4 (2×10 cores) and 64 GB RAM.  The
    per-core effective rate of 2.4 GFLOP/s reflects a bandwidth-bound
    stencil (the paper's single-node stencil point is ≈48 GFLOPS per node),
    far below the chips' peak — stencils stream memory.
    """
    return ClusterSpec(
        num_nodes=num_nodes,
        cores_per_node=20,
        flops_per_core=2.4e9,
        memory_per_node=64e9,
        network=NetworkConfig(),
        switch_radix=16,
    )


class Cluster:
    """A fully assembled simulated cluster."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.engine = SimEngine()
        self.metrics = MetricRegistry()
        self.topology = FatTreeTopology(spec.num_nodes, spec.switch_radix)
        self.network = Network(
            self.engine, self.topology, spec.network, self.metrics
        )
        self.nodes = [
            SimNode(
                self.engine,
                node_id=i,
                cores=spec.cores_per_node,
                flops_per_core=spec.flops_per_core,
                memory_bytes=spec.memory_per_node,
                metrics=self.metrics,
            )
            for i in range(spec.num_nodes)
        ]
        self.accelerators: list[list[SimAccelerator]] = [
            [
                SimAccelerator(self.engine, device_id=k, spec=spec.gpu)
                for k in range(spec.gpus_per_node)
            ]
            for _ in range(spec.num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        # capacity-change-safe: elastic clusters add nodes after
        # construction, so the live node list is authoritative, not the
        # (frozen) spec the cluster started from
        return len(self.nodes)

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def add_node(
        self,
        cores: int | None = None,
        flops_per_core: float | None = None,
        memory_bytes: float | None = None,
        gpus: int | None = None,
    ) -> int:
        """Grow the cluster by one node mid-run; returns its node id.

        The new node may be heterogeneous — a different core count,
        per-core rate (the GPU-variant machinery's speed knob applied
        per node), memory size, or accelerator count than the founding
        spec.  The network gains a NIC pair and the fat tree is regrown
        so hop counts include the newcomer.
        """
        spec = self.spec
        node_id = len(self.nodes)
        node = SimNode(
            self.engine,
            node_id=node_id,
            cores=cores if cores is not None else spec.cores_per_node,
            flops_per_core=(
                flops_per_core
                if flops_per_core is not None
                else spec.flops_per_core
            ),
            memory_bytes=(
                memory_bytes
                if memory_bytes is not None
                else spec.memory_per_node
            ),
            metrics=self.metrics,
        )
        self.nodes.append(node)
        count = gpus if gpus is not None else spec.gpus_per_node
        self.accelerators.append(
            [
                SimAccelerator(self.engine, device_id=k, spec=spec.gpu)
                for k in range(count)
            ]
        )
        self.topology = FatTreeTopology(len(self.nodes), spec.switch_radix)
        self.network.attach_node(self.topology)
        self.metrics.incr("cluster.nodes_added")
        return node_id

    def run(self, until: float | None = None) -> int:
        """Drive the event loop; returns the number of events processed."""
        return self.engine.run(until=until)

    def total_cores(self) -> int:
        # nodes may be heterogeneous after add_node; sum, don't multiply
        return sum(node.num_cores for node in self.nodes)

    def __repr__(self) -> str:
        return (
            f"Cluster({self.num_nodes} nodes × "
            f"{self.spec.cores_per_node} cores, t={self.engine.now:.6g}s)"
        )
