"""Simulated compute nodes.

A node owns a set of worker cores, each with its own busy-until timeline,
and a main-memory budget.  Work is expressed in seconds of core time (the
apps derive it from FLOP counts and a calibrated per-core rate); the node
places each work item on the earliest-available core — the behaviour of an
HPX worker pool that steals within the node, abstracted to its timing
effect.
"""

from __future__ import annotations


from repro.sim.engine import Future, SimEngine
from repro.sim.metrics import MetricRegistry


class MemoryExhaustedError(RuntimeError):
    """A fragment allocation exceeded the node's memory budget."""


class SimNode:
    """One cluster node: ``cores`` workers and ``memory_bytes`` of RAM."""

    __slots__ = (
        "engine",
        "node_id",
        "num_cores",
        "flops_per_core",
        "memory_bytes",
        "memory_used",
        "metrics",
        "_core_free_at",
        "_busy_time",
        "_ctr",
    )

    def __init__(
        self,
        engine: SimEngine,
        node_id: int,
        cores: int,
        flops_per_core: float,
        memory_bytes: float = float("inf"),
        metrics: MetricRegistry | None = None,
    ) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if flops_per_core <= 0:
            raise ValueError("flops_per_core must be positive")
        self.engine = engine
        self.node_id = node_id
        self.num_cores = cores
        self.flops_per_core = flops_per_core
        self.memory_bytes = memory_bytes
        self.memory_used = 0.0
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._core_free_at = [0.0] * cores
        self._busy_time = 0.0
        # flat per-event slots, flushed into ``metrics`` at barriers:
        # counts[0]=node.tasks_executed, counts[1]=node.parallel_regions,
        # rows[0]=node.queue_wait
        self._ctr = self.metrics.block(
            ("node.tasks_executed", "node.parallel_regions"),
            ("node.queue_wait",),
        )

    # -- compute -------------------------------------------------------------------

    def execute(self, cost_seconds: float) -> Future:
        """Occupy the earliest-free core for ``cost_seconds``.

        Returns a future completing when the work finishes.
        """
        if cost_seconds < 0:
            raise ValueError(f"negative cost {cost_seconds}")
        engine = self.engine
        free_at = self._core_free_at
        core = min(range(self.num_cores), key=free_at.__getitem__)
        start = max(engine.now, free_at[core])
        finish = start + cost_seconds
        free_at[core] = finish
        self._busy_time += cost_seconds
        ctr = self._ctr
        ctr.counts[0] += 1.0
        ctr.note(0, start - engine.now)
        done = engine.future()
        engine.schedule_at(finish, lambda: done.complete(engine.now))
        return done

    def execute_parallel(self, cost_seconds: float) -> Future:
        """Occupy *all* cores for ``cost_seconds`` (node-wide kernel).

        Models an OpenMP-style parallel region / an MPI rank driving the
        whole node; starts when every core is free.
        """
        if cost_seconds < 0:
            raise ValueError(f"negative cost {cost_seconds}")
        engine = self.engine
        start = max(engine.now, max(self._core_free_at))
        finish = start + cost_seconds
        for core in range(self.num_cores):
            self._core_free_at[core] = finish
        self._busy_time += cost_seconds * self.num_cores
        self._ctr.counts[1] += 1.0
        done = engine.future()
        engine.schedule_at(finish, lambda: done.complete(engine.now))
        return done

    def flops_to_seconds(self, flops: float) -> float:
        """Convert a FLOP count to single-core seconds on this node."""
        return flops / self.flops_per_core

    def flops_to_seconds_parallel(self, flops: float) -> float:
        """Seconds for ``flops`` spread perfectly over all cores."""
        return flops / (self.flops_per_core * self.num_cores)

    def earliest_core_free(self) -> float:
        return min(self._core_free_at)

    def backlog(self) -> float:
        """Average seconds of queued work per core — a load signal."""
        now = self.engine.now
        return sum(max(0.0, t - now) for t in self._core_free_at) / self.num_cores

    def busy_fraction(self, elapsed: float) -> float:
        """Core utilization over ``elapsed`` simulated seconds."""
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.num_cores)

    # -- memory --------------------------------------------------------------------

    def allocate(self, nbytes: float) -> None:
        if self.memory_used + nbytes > self.memory_bytes:
            raise MemoryExhaustedError(
                f"node {self.node_id}: allocation of {nbytes:.3g} B exceeds "
                f"budget ({self.memory_used:.3g}/{self.memory_bytes:.3g} B used)"
            )
        self.memory_used += nbytes

    def free(self, nbytes: float) -> None:
        self.memory_used = max(0.0, self.memory_used - nbytes)

    def __repr__(self) -> str:
        return (
            f"SimNode(id={self.node_id}, cores={self.num_cores}, "
            f"mem={self.memory_used:.3g}/{self.memory_bytes:.3g})"
        )
