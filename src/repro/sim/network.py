"""Latency/bandwidth/occupancy network model.

A message from node ``s`` to node ``d`` of ``n`` bytes experiences:

* **NIC serialization at the sender** — the sending NIC is a serial
  resource: each message occupies it for a fixed per-message overhead plus
  ``n / bandwidth``.  Queueing behind earlier messages is what makes
  many-small-message workloads (the paper's TPC benchmark) degrade at
  scale;
* **wire latency** — a base latency plus a per-switch-hop increment from
  the fat-tree topology;
* **receive overhead** at the destination NIC (also serialized).

Loopback messages (``s == d``) bypass the NIC and cost a small software
overhead only, matching how HPX short-circuits local communication.

All state lives on the simulation engine, so concurrent transfers interact
through the NIC busy timelines deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Future, SimEngine
from repro.sim.metrics import MetricRegistry
from repro.sim.topology import FatTreeTopology


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Tunable parameters of the network model.

    Defaults approximate a 100 Gbit/s OmniPath-class interconnect:
    ~1 µs base MPI latency, ~12.5 GB/s peak bandwidth, sub-microsecond
    per-message CPU/NIC overheads.
    """

    base_latency: float = 1.0e-6
    hop_latency: float = 0.15e-6
    bandwidth: float = 12.5e9
    send_overhead: float = 0.4e-6
    recv_overhead: float = 0.4e-6
    loopback_overhead: float = 0.05e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        for name in (
            "base_latency",
            "hop_latency",
            "send_overhead",
            "recv_overhead",
            "loopback_overhead",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(slots=True)
class _NicState:
    send_free_at: float = 0.0
    recv_free_at: float = 0.0


class Network:
    """Message transport between simulated nodes."""

    __slots__ = ("engine", "topology", "config", "metrics", "_nics", "_ctr")

    def __init__(
        self,
        engine: SimEngine,
        topology: FatTreeTopology,
        config: NetworkConfig | None = None,
        metrics: MetricRegistry | None = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.config = config or NetworkConfig()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._nics = [_NicState() for _ in range(topology.num_nodes)]
        # flat per-message slots, flushed into ``metrics`` at barriers:
        # counts = (net.messages, net.bytes, net.bulk_messages,
        # net.bulk_parts), rows[0] = net.send_queue_wait
        self._ctr = self.metrics.block(
            ("net.messages", "net.bytes", "net.bulk_messages", "net.bulk_parts"),
            ("net.send_queue_wait",),
        )

    # -- core transfer ---------------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int) -> Future:
        """Transfer ``nbytes`` from node ``src`` to node ``dst``.

        Returns a future that completes (with the delivery time) when the
        message is fully received at ``dst``.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        engine = self.engine
        cfg = self.config
        done = engine.future()
        ctr = self._ctr
        ctr.counts[0] += 1.0
        ctr.counts[1] += nbytes

        # trace labels are built only under repro.verify (labels active)
        label = (
            ("net.deliver", src, dst, nbytes)
            if engine._labels is not None
            else None
        )
        if src == dst:
            engine.schedule(
                cfg.loopback_overhead,
                lambda: done.complete(engine.now),
                label=label,
            )
            return done

        serialization = nbytes / cfg.bandwidth
        nic = self._nics[src]
        send_start = max(engine.now, nic.send_free_at)
        send_done = send_start + cfg.send_overhead + serialization
        nic.send_free_at = send_done
        ctr.note(0, send_start - engine.now)

        wire = cfg.base_latency + cfg.hop_latency * self.topology.switch_hops(
            src, dst
        )
        arrival = send_done + wire

        def on_arrival() -> None:
            rnic = self._nics[dst]
            recv_start = max(engine.now, rnic.recv_free_at)
            recv_done = recv_start + cfg.recv_overhead
            rnic.recv_free_at = recv_done
            engine.schedule_at(
                recv_done, lambda: done.complete(engine.now), label=label
            )

        engine.schedule_at(
            arrival,
            on_arrival,
            label=(
                ("net.arrival", src, dst, nbytes)
                if engine._labels is not None
                else None
            ),
        )
        return done

    def send_bulk(self, src: int, dst: int, sizes: list[int]) -> Future:
        """One bulk message carrying several coalesced payloads.

        The NIC is charged *once*: a single per-message overhead plus the
        summed serialization time, so a bulk message always costs at least
        as much as its largest constituent sent alone, and strictly less
        than sending the parts as separate messages.  Loopback bulk
        messages short-circuit like plain sends.
        """
        sizes = list(sizes)
        if not sizes:
            raise ValueError("bulk message with no constituent payloads")
        for nbytes in sizes:
            if nbytes < 0:
                raise ValueError(f"negative constituent size {nbytes}")
        ctr = self._ctr
        ctr.counts[2] += 1.0
        ctr.counts[3] += len(sizes)
        return self.send(src, dst, sum(sizes))

    def transfer_time_estimate(self, src: int, dst: int, nbytes: int) -> float:
        """Unloaded-network latency estimate (no queueing); used by policies."""
        cfg = self.config
        if src == dst:
            return cfg.loopback_overhead
        return (
            cfg.send_overhead
            + nbytes / cfg.bandwidth
            + cfg.base_latency
            + cfg.hop_latency * self.topology.switch_hops(src, dst)
            + cfg.recv_overhead
        )

    # -- elastic membership ------------------------------------------------------------

    def attach_node(self, topology: FatTreeTopology) -> None:
        """Adopt a grown topology and give each new node a fresh NIC pair.

        Called by :meth:`repro.sim.cluster.Cluster.add_node`; the NIC
        list is sized at construction, so joining nodes must extend it or
        their first send would index out of range.
        """
        if topology.num_nodes < len(self._nics):
            raise ValueError(
                f"topology shrank from {len(self._nics)} to "
                f"{topology.num_nodes} nodes; departures keep their NICs"
            )
        self.topology = topology
        while len(self._nics) < topology.num_nodes:
            self._nics.append(_NicState())

    # -- introspection ---------------------------------------------------------------

    def nic_backlog(self, node: int) -> float:
        """Seconds until node's send NIC is free — a congestion signal."""
        return max(0.0, self._nics[node].send_free_at - self.engine.now)
