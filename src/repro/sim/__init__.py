"""Deterministic discrete-event cluster simulator.

This package is the substitution for the hardware the paper evaluated on
(the RRZE Meggie cluster: 64 nodes, 2× Intel Xeon E5-2630 v4 per node,
Intel OmniPath in a fat-tree topology).  It provides:

``engine``
    a discrete-event core with totally ordered events (time, sequence
    number) and completable futures, so simulations are reproducible
    bit-for-bit;
``node``
    simulated nodes with per-core busy timelines and a memory budget;
``network``
    a latency/bandwidth/occupancy network model over a fat-tree topology,
    including per-node NIC serialization — the effect that makes many small
    messages expensive (the mechanism behind the paper's TPC result);
``cluster``
    cluster assembly from a :class:`ClusterSpec`, with a preset calibrated
    to the paper's testbed;
``metrics``
    counter/timer registry used by the runtime's monitoring component.
"""

from repro.sim.engine import SimEngine, Future, Event
from repro.sim.node import SimNode
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import FatTreeTopology
from repro.sim.cluster import Cluster, ClusterSpec, meggie_like_spec
from repro.sim.metrics import MetricRegistry

__all__ = [
    "SimEngine",
    "Future",
    "Event",
    "SimNode",
    "Network",
    "NetworkConfig",
    "FatTreeTopology",
    "Cluster",
    "ClusterSpec",
    "meggie_like_spec",
    "MetricRegistry",
]
