"""Counters and simple streaming statistics for simulation runs.

The AllScale runtime's monitoring infrastructure (paper §3.2, deliverable
D5.2) observes task and data management activity; this registry is the
substrate it records into.  Counters and observations are plain floats —
cheap enough to leave enabled in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Stat:
    """Streaming count/sum/min/max of observed values."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricRegistry:
    """Hierarchically named counters and statistics."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.stats: dict[str, Stat] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set(self, name: str, value: float) -> None:
        """Overwrite a counter with an externally computed value."""
        self.counters[name] = value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = Stat()
        stat.observe(value)

    def stat(self, name: str) -> Stat:
        return self.stats.get(name, Stat())

    def merged(self, other: "MetricRegistry") -> "MetricRegistry":
        """Return a new registry combining both operands."""
        out = MetricRegistry()
        for src in (self, other):
            for name, value in src.counters.items():
                out.incr(name, value)
            for name, stat in src.stats.items():
                dst = out.stats.setdefault(name, Stat())
                dst.count += stat.count
                dst.total += stat.total
                dst.minimum = min(dst.minimum, stat.minimum)
                dst.maximum = max(dst.maximum, stat.maximum)
        return out

    def snapshot(self) -> dict[str, float]:
        """Flat dict of counters plus ``<stat>.mean`` entries."""
        out = dict(self.counters)
        for name, stat in self.stats.items():
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.count"] = float(stat.count)
        return out

    def __repr__(self) -> str:
        return (
            f"MetricRegistry({len(self.counters)} counters, "
            f"{len(self.stats)} stats)"
        )
