"""Counters and simple streaming statistics for simulation runs.

The AllScale runtime's monitoring infrastructure (paper §3.2, deliverable
D5.2) observes task and data management activity; this registry is the
substrate it records into.

Two recording paths exist:

* **named** — ``incr``/``observe`` with a metric name; fine for cold
  paths (scheduler decisions, resilience events, once-per-run totals).
* **flat** — a :class:`CounterBlock` of preallocated, index-addressed
  slots handed to per-event hot paths (node execution, NIC sends).  The
  hot loop touches a slot by integer index; the block is folded back into
  the named dicts at flush barriers (end of a ``runtime.wait`` drive, or
  lazily whenever the named view is read), so readers always see totals
  while the per-event cost drops to one list-index add.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf


@dataclass(slots=True)
class Stat:
    """Streaming count/sum/min/max of observed values."""

    count: int = 0
    total: float = 0.0
    minimum: float = inf
    maximum: float = -inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class CounterBlock:
    """Preallocated flat counter/stat slots for per-event hot paths.

    A hot path resolves its slot indices once (at construction time) and
    then records with ``block.counts[i] += x`` or ``block.note(i, v)`` —
    no string hashing, no dict lookups, no attribute dispatch beyond the
    block itself.  :meth:`MetricRegistry.flush` drains the slots into the
    registry's named counters/stats and zeroes them; empty slots cost
    nothing to flush.
    """

    __slots__ = ("counts", "rows", "_counter_names", "_stat_names")

    def __init__(
        self,
        counter_names: tuple[str, ...],
        stat_names: tuple[str, ...] = (),
    ) -> None:
        self._counter_names = tuple(counter_names)
        self._stat_names = tuple(stat_names)
        #: one accumulator slot per counter name, addressed by index
        self.counts: list[float] = [0.0] * len(self._counter_names)
        #: one ``[count, total, min, max]`` row per stat name
        self.rows: list[list[float]] = [
            [0.0, 0.0, inf, -inf] for _ in self._stat_names
        ]

    def note(self, index: int, value: float) -> None:
        """Record one observation into stat row ``index``."""
        row = self.rows[index]
        row[0] += 1.0
        row[1] += value
        if value < row[2]:
            row[2] = value
        if value > row[3]:
            row[3] = value

    def _drain_into(
        self, counters: dict[str, float], stats: dict[str, Stat]
    ) -> None:
        counts = self.counts
        for index, name in enumerate(self._counter_names):
            value = counts[index]
            if value:
                counters[name] = counters.get(name, 0.0) + value
                counts[index] = 0.0
        for index, name in enumerate(self._stat_names):
            row = self.rows[index]
            if row[0]:
                stat = stats.get(name)
                if stat is None:
                    stat = stats[name] = Stat()
                stat.count += int(row[0])
                stat.total += row[1]
                if row[2] < stat.minimum:
                    stat.minimum = row[2]
                if row[3] > stat.maximum:
                    stat.maximum = row[3]
                row[0] = 0.0
                row[1] = 0.0
                row[2] = inf
                row[3] = -inf

    def __repr__(self) -> str:
        return (
            f"CounterBlock({len(self._counter_names)} counters, "
            f"{len(self._stat_names)} stats)"
        )


class MetricRegistry:
    """Hierarchically named counters and statistics."""

    __slots__ = ("_counters", "_stats", "_blocks")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._stats: dict[str, Stat] = {}
        self._blocks: list[CounterBlock] = []

    # -- flat hot-path blocks ------------------------------------------------

    def block(
        self,
        counter_names: tuple[str, ...],
        stat_names: tuple[str, ...] = (),
    ) -> CounterBlock:
        """Allocate a flat counter block that flushes into this registry."""
        blk = CounterBlock(counter_names, stat_names)
        self._blocks.append(blk)
        return blk

    def flush(self) -> None:
        """Fold every block's slots into the named counters/stats."""
        for blk in self._blocks:
            blk._drain_into(self._counters, self._stats)

    # -- named views (always flushed-consistent) -----------------------------

    @property
    def counters(self) -> dict[str, float]:
        self.flush()
        return self._counters

    @property
    def stats(self) -> dict[str, Stat]:
        self.flush()
        return self._stats

    # -- named recording -----------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set(self, name: str, value: float) -> None:
        """Overwrite a counter with an externally computed value."""
        self.flush()
        self._counters[name] = value

    def counter(self, name: str) -> float:
        self.flush()
        return self._counters.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = Stat()
        stat.observe(value)

    def stat(self, name: str) -> Stat:
        self.flush()
        return self._stats.get(name, Stat())

    def merged(self, other: "MetricRegistry") -> "MetricRegistry":
        """Return a new registry combining both operands."""
        out = MetricRegistry()
        for src in (self, other):
            for name, value in src.counters.items():
                out.incr(name, value)
            for name, stat in src.stats.items():
                dst = out._stats.setdefault(name, Stat())
                dst.count += stat.count
                dst.total += stat.total
                dst.minimum = min(dst.minimum, stat.minimum)
                dst.maximum = max(dst.maximum, stat.maximum)
        return out

    def snapshot(self) -> dict[str, float]:
        """Flat dict of counters plus ``<stat>.mean`` entries."""
        out = dict(self.counters)
        for name, stat in self._stats.items():
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.count"] = float(stat.count)
        return out

    def __repr__(self) -> str:
        self.flush()
        return (
            f"MetricRegistry({len(self._counters)} counters, "
            f"{len(self._stats)} stats)"
        )
