"""Discrete-event simulation core on a flat, array-backed calendar queue.

Events are ordered by ``(time, sequence)`` — the sequence number makes
simultaneous events fire in scheduling order, so every run of the same
scenario is deterministic regardless of hash randomization or dict
ordering.

The queue is a struct-of-arrays calendar rather than a heap of event
objects:

* **sorted run** — two parallel numpy arrays (``float64`` times,
  ``int64`` sequence numbers) sorted by ``(time, seq)``, consumed through
  a cursor.  Same-timestamp events form a contiguous slice of the run and
  are dispatched as one batch.
* **overflow heap** — events scheduled since the last merge live in a
  small ``(time, seq)`` tuple heap.  Because sequence numbers are
  monotone, every overflow entry sorts after every run entry at equal
  timestamps, which is what makes batched run dispatch safe.  When the
  overflow outgrows the remaining run it is merged in with one
  ``numpy.lexsort`` — amortized O(1) per event.
* **callback table** — ``seq -> callable``.  Cancellation removes the
  entry (the array slot becomes a tombstone, skipped on pop); when more
  than half the pending slots are tombstones the queue compacts itself
  and counts it in :attr:`SimEngine.compactions`.

Two programming styles are supported on top of the raw event queue:

* **callbacks** — ``engine.schedule(delay, fn)``;
* **processes** — generator coroutines that ``yield`` either a float delay
  or a :class:`Future`; the engine resumes them when the delay elapses or
  the future completes.  The runtime system and the MPI baseline are
  written in this style.

**Controlled nondeterminism** (``repro.verify``): the ``(time, seq)``
order makes one run deterministic, but it is only *one* schedule of the
modelled system — the seq component is an artifact of scheduling order,
and every scheduled delay is a lower bound (a message may always arrive
later, a worker may always be preempted longer), so executing any pending
event next, at ``max(now, its time)``, is a legal schedule of the real
runtime.  :meth:`SimEngine.set_oracle` installs a
:class:`ScheduleOracle`-shaped object through which that choice is routed,
switching ``run`` onto a slower, fully introspectable dispatch loop; the
model checker drives it to explore alternative schedules, and a recorded
decision trace replays any explored branch exactly.  :meth:`SimEngine.set_hb` installs a
happens-before observer (event attribution, spawn edges, future
completion/read edges, coroutine program order) feeding the vector-clock
layer of the race sanitizer.  Both hooks are ``None`` in normal runs and
cost one attribute check on the hot paths.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable, Generator

import numpy as np

#: merge the overflow heap into the sorted run once it outgrows both this
#: floor and the unconsumed remainder of the run
_MERGE_FLOOR = 1024

_EMPTY_TIMES = np.empty(0, dtype=np.float64)
_EMPTY_SEQS = np.empty(0, dtype=np.int64)


class Event:
    """Handle for a scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, engine: "SimEngine") -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._engine._cancel(self.seq)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6g}, seq={self.seq}{flag})"


class Future:
    """A completable one-shot value, usable from coroutine processes.

    ``yield future`` inside a process suspends it until ``complete`` is
    called; the completed value becomes the result of the ``yield``
    expression.  Completing twice is an error; callbacks added after
    completion run immediately.
    """

    __slots__ = ("engine", "done", "value", "_callbacks")

    def __init__(self, engine: "SimEngine") -> None:
        self.engine = engine
        self.done = False
        self.value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    def complete(self, value: Any = None) -> None:
        if self.done:
            raise RuntimeError("future completed twice")
        self.done = True
        self.value = value
        hb = self.engine._hb
        if hb is not None:
            hb.on_future_complete(self)
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self.done:
            hb = self.engine._hb
            if hb is not None:
                # the value carries causality from the completing event
                hb.on_future_read(self)
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:
        return f"Future(done={self.done})"


ProcessGen = Generator[Any, Any, Any]


class SimEngine:
    """Deterministic discrete-event loop over the flat calendar queue."""

    __slots__ = (
        "now",
        "compactions",
        "_run_times",
        "_run_seqs",
        "_rt",
        "_rs",
        "_run_pos",
        "_over",
        "_fns",
        "_next_seq",
        "_cancelled",
        "_gen",
        "_events_processed",
        "_listeners",
        "_oracle",
        "_hb",
        "_labels",
        "_ctl_times",
    )

    def __init__(self) -> None:
        self.now = 0.0
        #: number of tombstone-compaction passes the queue has performed
        self.compactions = 0
        # sorted run (struct-of-arrays) + python-list dispatch mirrors;
        # the numpy arrays are canonical storage for merge/compaction,
        # the lists give O(1) scalar reads in the dispatch loop
        self._run_times = _EMPTY_TIMES
        self._run_seqs = _EMPTY_SEQS
        self._rt: list[float] = []
        self._rs: list[int] = []
        self._run_pos = 0
        # overflow: (time, seq) heap of events scheduled since last merge
        self._over: list[tuple[float, int]] = []
        # seq -> callback; absent seq == cancelled tombstone
        self._fns: dict[int, Callable[[], None]] = {}
        self._next_seq = 0
        self._cancelled = 0
        # bumped by merge/compaction so an active run() reloads its locals
        self._gen = 0
        self._events_processed = 0
        # post-event observers (e.g. the runtime invariant sentinel);
        # called with no arguments after each executed event
        self._listeners: list[Callable[[], None]] = []
        # controlled-nondeterminism seam (repro.verify); both None in
        # normal runs, costing one attribute check on the hot paths
        self._oracle: Any = None
        self._hb: Any = None
        self._labels: dict[int, Any] | None = None
        # controlled mode keeps pending (seq -> time) here instead of in
        # the sorted run, so any live event is addressable by the oracle
        self._ctl_times: dict[int, float] = {}

    # -- verification seam ----------------------------------------------------------

    def set_oracle(self, oracle: Any) -> None:
        """Route schedule choices through ``oracle`` (or detach).

        While an oracle (or a happens-before observer) is installed,
        :meth:`run` uses the controlled dispatch loop: before each event,
        every live event is collected in natural ``(time, seq)`` order and
        — when there is more than one — ``oracle.choose(time, seqs,
        labels)`` picks which fires next (at ``max(now, its time)``; every
        delay is a lower bound, so deferring events is always legal).
        ``None`` detaches and folds any controlled-mode state back into
        the normal queue.
        """
        self._oracle = oracle
        if oracle is not None and self._labels is None:
            self._labels = {}
        if oracle is None and self._hb is None:
            self._exit_controlled()

    def set_hb(self, hb: Any) -> None:
        """Install (or with ``None`` detach) a happens-before observer.

        The observer receives event attribution (``on_event``), scheduling
        edges (``on_scheduled``), coroutine lifecycle (``on_spawn`` /
        ``on_resume`` / ``on_suspend``), and future causality
        (``on_future_complete`` / ``on_future_read`` / ``note_future_dep``).
        """
        self._hb = hb
        if hb is not None and self._labels is None:
            self._labels = {}
        if hb is None and self._oracle is None:
            self._exit_controlled()

    def _exit_controlled(self) -> None:
        """Fold controlled-mode pending events back into the overflow heap."""
        if self._ctl_times:
            for seq, time in self._ctl_times.items():
                if seq in self._fns:
                    heapq.heappush(self._over, (time, seq))
            self._ctl_times = {}
        self._labels = None

    def add_listener(self, fn: Callable[[], None]) -> None:
        """Register an observer invoked after every executed event."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[], None]) -> None:
        """Unregister an observer added with :meth:`add_listener`."""
        if fn in self._listeners:
            self._listeners.remove(fn)

    # -- scheduling ---------------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable[[], None], label: Any = None
    ) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds.

        ``label`` is an optional human-readable tag recorded only while a
        verification oracle or happens-before observer is installed; it
        makes decision traces legible and costs nothing otherwise.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        self._fns[seq] = fn
        heapq.heappush(self._over, (time, seq))
        if self._labels is not None:
            if label is not None:
                self._labels[seq] = label
            if self._hb is not None:
                self._hb.on_scheduled(seq)
        return Event(time, seq, self)

    def schedule_at(
        self, time: float, fn: Callable[[], None], label: Any = None
    ) -> Event:
        """Run ``fn`` at absolute simulated time ``time`` (>= now)."""
        if time < self.now:
            if self._labels is not None:
                # controlled dispatch may have deferred events past an
                # absolute time computed earlier (e.g. a NIC free slot);
                # the deferral makes that minimum already satisfied
                time = self.now
            else:
                raise ValueError(
                    f"cannot schedule in the past: {time} < {self.now}"
                )
        seq = self._next_seq
        self._next_seq = seq + 1
        self._fns[seq] = fn
        heapq.heappush(self._over, (time, seq))
        if self._labels is not None:
            if label is not None:
                self._labels[seq] = label
            if self._hb is not None:
                self._hb.on_scheduled(seq)
        return Event(time, seq, self)

    def future(self) -> Future:
        return Future(self)

    # -- coroutine processes ---------------------------------------------------------

    def spawn(self, gen: ProcessGen) -> Future:
        """Run a generator process; the returned future completes with its
        ``return`` value when the process finishes."""
        result = self.future()
        if self._hb is not None:
            self._hb.on_spawn(id(gen))
        self._step_process(gen, None, result)
        return result

    def _step_process(self, gen: ProcessGen, send_value: Any, result: Future) -> None:
        hb = self._hb
        if hb is not None:
            hb.on_resume(id(gen))
        try:
            yielded = gen.send(send_value)
        except StopIteration as stop:
            if hb is not None:
                hb.on_suspend(id(gen), finished=True)
            result.complete(stop.value)
            return
        if hb is not None:
            hb.on_suspend(id(gen))
        if isinstance(yielded, Future):
            yielded.add_callback(
                lambda value: self._step_process(gen, value, result)
            )
        elif isinstance(yielded, (int, float)):
            self.schedule(
                float(yielded), lambda: self._step_process(gen, None, result)
            )
        else:
            raise TypeError(
                f"process yielded {yielded!r}; expected Future or delay"
            )

    def all_of(self, futures: list[Future]) -> Future:
        """Future completing (with a list of values) once all inputs complete."""
        combined = self.future()
        if not futures:
            combined.complete([])
            return combined
        remaining = len(futures)
        values: list[Any] = [None] * len(futures)

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                nonlocal remaining
                values[index] = value
                remaining -= 1
                hb = self._hb
                if hb is not None:
                    # the joined result depends on *every* input's
                    # completer, not only the last one's
                    hb.note_future_dep(combined)
                if remaining == 0:
                    combined.complete(values)

            return cb

        for index, future in enumerate(futures):
            future.add_callback(make_cb(index))
        return combined

    # -- queue maintenance ----------------------------------------------------------

    def _cancel(self, seq: int) -> None:
        if self._fns.pop(seq, None) is None:
            return  # already executed, already cancelled, or never queued
        if self._ctl_times:
            self._ctl_times.pop(seq, None)
        if self._labels is not None:
            self._labels.pop(seq, None)
        self._cancelled += 1
        pending_slots = (len(self._rs) - self._run_pos) + len(self._over)
        if self._cancelled * 2 > pending_slots:
            self._compact()

    def _merge(self) -> None:
        """Fold the overflow heap into the sorted run with one lexsort."""
        over = self._over
        if not over:
            return
        count = len(over)
        times = np.concatenate(
            (
                self._run_times[self._run_pos :],
                np.fromiter((e[0] for e in over), dtype=np.float64, count=count),
            )
        )
        seqs = np.concatenate(
            (
                self._run_seqs[self._run_pos :],
                np.fromiter((e[1] for e in over), dtype=np.int64, count=count),
            )
        )
        order = np.lexsort((seqs, times))
        self._run_times = times[order]
        self._run_seqs = seqs[order]
        self._rt = self._run_times.tolist()
        self._rs = self._run_seqs.tolist()
        self._run_pos = 0
        over.clear()
        self._gen += 1

    def _compact(self) -> None:
        """Drop tombstoned slots from both the run and the overflow."""
        self.compactions += 1
        fns = self._fns
        times = self._run_times[self._run_pos :]
        seqs = self._run_seqs[self._run_pos :]
        if len(seqs):
            if fns:
                live = np.isin(
                    seqs,
                    np.fromiter(fns.keys(), dtype=np.int64, count=len(fns)),
                )
                times = np.ascontiguousarray(times[live])
                seqs = np.ascontiguousarray(seqs[live])
            else:
                times = _EMPTY_TIMES
                seqs = _EMPTY_SEQS
        self._run_times = times
        self._run_seqs = seqs
        self._rt = times.tolist()
        self._rs = seqs.tolist()
        self._run_pos = 0
        if self._over:
            self._over = [e for e in self._over if e[1] in fns]
            heapq.heapify(self._over)
        self._cancelled = 0
        self._gen += 1

    def _peek_time(self) -> float:
        """Time of the earliest pending slot (tombstones included)."""
        head = inf
        if self._run_pos < len(self._rt):
            head = self._rt[self._run_pos]
        if self._over and self._over[0][0] < head:
            head = self._over[0][0]
        if self._ctl_times:
            fns = self._fns
            for seq, time in self._ctl_times.items():
                if time < head and seq in fns:
                    head = time
        return head

    # -- execution -----------------------------------------------------------------

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Process events until the queue drains (or a bound is hit).

        Returns the number of events processed by this call.
        """
        if self._oracle is not None or self._hb is not None:
            return self._run_controlled(until, max_events)
        horizon = inf if until is None else until
        limit = inf if max_events is None else max_events
        processed = 0
        if len(self._over) > min(_MERGE_FLOOR, 32 + len(self._rs) - self._run_pos):
            self._merge()
        fns = self._fns
        listeners = self._listeners
        rt, rs = self._rt, self._rs
        pos, n = self._run_pos, len(self._rs)
        over = self._over
        gen = self._gen
        while processed < limit:
            if len(over) > _MERGE_FLOOR and len(over) > n - pos:
                self._run_pos = pos
                self._merge()
                rt, rs = self._rt, self._rs
                pos, n = 0, len(rs)
                gen = self._gen
            if pos < n:
                t = rt[pos]
                from_over = bool(over) and over[0][0] < t
            elif over:
                from_over = True
            else:
                break
            if from_over:
                t = over[0][0]
                if t > horizon:
                    break
                seq = heapq.heappop(over)[1]
                fn = fns.pop(seq, None)
                if fn is None:
                    self._cancelled -= 1
                    continue
                self.now = t
                self._run_pos = pos  # keep honest: fn may compact/merge
                fn()
                processed += 1
                self._events_processed += 1
                if listeners:
                    for listener in tuple(listeners):
                        listener()
                if self._gen != gen:
                    rt, rs = self._rt, self._rs
                    pos, n = self._run_pos, len(rs)
                    gen = self._gen
                continue
            if t > horizon:
                break
            # batched same-timestamp dispatch: every run entry at time t
            # precedes every overflow entry at time t (overflow seqs are
            # strictly larger), so the whole contiguous slice is safe
            end = pos + 1
            while end < n and rt[end] == t:
                end += 1
            self.now = t
            while pos < end and processed < limit:
                seq = rs[pos]
                pos += 1
                fn = fns.pop(seq, None)
                if fn is None:
                    self._cancelled -= 1
                    continue
                self._run_pos = pos
                fn()
                processed += 1
                self._events_processed += 1
                if listeners:
                    for listener in tuple(listeners):
                        listener()
                if self._gen != gen:
                    rt, rs = self._rt, self._rs
                    pos, n = self._run_pos, len(rs)
                    gen = self._gen
                    break
        self._run_pos = pos
        if until is not None and self._peek_time() > until:
            self.now = max(self.now, until)
        return processed

    def _run_controlled(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Verification-mode dispatch: every schedule choice goes via the
        oracle.

        Without an oracle (or with one that always picks the first
        candidate) events fire in exactly the normal ``(time, seq)`` order
        — but all live events are visible as one candidate set before each
        dispatch, and the oracle may fire *any* of them next: scheduled
        delays are lower bounds on the modelled system, so delaying one
        event past another is always a legal schedule (the chosen event
        runs at ``max(now, its time)``, keeping time monotone).
        O(pending log pending) per event; only ever active under
        ``repro.verify``.
        """
        horizon = inf if until is None else until
        limit = inf if max_events is None else max_events
        processed = 0
        fns = self._fns
        times = self._ctl_times
        # fold the sorted run into the controlled map once
        if self._run_pos < len(self._rs):
            for i in range(self._run_pos, len(self._rs)):
                seq = self._rs[i]
                if seq in fns:
                    times[seq] = self._rt[i]
        self._run_times = _EMPTY_TIMES
        self._run_seqs = _EMPTY_SEQS
        self._rt = []
        self._rs = []
        self._run_pos = 0
        over = self._over
        oracle = self._oracle
        hb = self._hb
        labels = self._labels
        while processed < limit:
            if over:
                for time, seq in over:
                    if seq in fns:
                        times[seq] = time
                over.clear()
            if not times:
                break
            tmin = inf
            for seq, time in times.items():
                if time < tmin:
                    tmin = time
            if tmin > horizon:
                break
            candidates = [
                seq
                for seq, time in sorted(
                    times.items(), key=lambda entry: (entry[1], entry[0])
                )
                if time <= horizon
            ]
            if len(candidates) > 1 and oracle is not None:
                seq = oracle.choose(tmin, candidates, labels)
                if seq not in times:
                    raise RuntimeError(
                        f"oracle chose seq {seq} outside the candidate set"
                    )
            else:
                seq = candidates[0]
            chosen_time = times.pop(seq)
            fn = fns.pop(seq)
            if labels is not None:
                labels.pop(seq, None)
            if chosen_time > self.now:
                self.now = chosen_time
            if hb is not None:
                hb.on_event(seq)
            fn()
            processed += 1
            self._events_processed += 1
            if self._listeners:
                for listener in tuple(self._listeners):
                    listener()
            # detached mid-run (a scenario tearing down its monitor)
            if self._oracle is not oracle or self._hb is not hb:
                remaining = (
                    None if max_events is None else max_events - processed
                )
                return processed + self.run(until=until, max_events=remaining)
        if until is not None and self._peek_time() > until:
            self.now = max(self.now, until)
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._fns)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:
        return f"SimEngine(now={self.now:.6g}, pending={self.pending_events})"
