"""Discrete-event simulation core.

The engine keeps a priority queue of events ordered by ``(time, sequence)``
— the sequence number makes simultaneous events fire in scheduling order,
so every run of the same scenario is deterministic regardless of hash
randomization or dict ordering.

Two programming styles are supported on top of the raw event queue:

* **callbacks** — ``engine.schedule(delay, fn)``;
* **processes** — generator coroutines that ``yield`` either a float delay
  or a :class:`Future`; the engine resumes them when the delay elapses or
  the future completes.  The runtime system and the MPI baseline are
  written in this style.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6g}, seq={self.seq}{flag})"


class Future:
    """A completable one-shot value, usable from coroutine processes.

    ``yield future`` inside a process suspends it until ``complete`` is
    called; the completed value becomes the result of the ``yield``
    expression.  Completing twice is an error; callbacks added after
    completion run immediately.
    """

    __slots__ = ("engine", "done", "value", "_callbacks")

    def __init__(self, engine: "SimEngine") -> None:
        self.engine = engine
        self.done = False
        self.value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    def complete(self, value: Any = None) -> None:
        if self.done:
            raise RuntimeError("future completed twice")
        self.done = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self.done:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:
        return f"Future(done={self.done})"


ProcessGen = Generator[Any, Any, Any]


class SimEngine:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # post-event observers (e.g. the runtime invariant sentinel);
        # called with no arguments after each executed event
        self._listeners: list[Callable[[], None]] = []

    def add_listener(self, fn: Callable[[], None]) -> None:
        """Register an observer invoked after every executed event."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[], None]) -> None:
        """Unregister an observer added with :meth:`add_listener`."""
        if fn in self._listeners:
            self._listeners.remove(fn)

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        event = Event(self.now + delay, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute simulated time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        return event

    def future(self) -> Future:
        return Future(self)

    # -- coroutine processes ---------------------------------------------------------

    def spawn(self, gen: ProcessGen) -> Future:
        """Run a generator process; the returned future completes with its
        ``return`` value when the process finishes."""
        result = self.future()
        self._step_process(gen, None, result)
        return result

    def _step_process(self, gen: ProcessGen, send_value: Any, result: Future) -> None:
        try:
            yielded = gen.send(send_value)
        except StopIteration as stop:
            result.complete(stop.value)
            return
        if isinstance(yielded, Future):
            yielded.add_callback(
                lambda value: self._step_process(gen, value, result)
            )
        elif isinstance(yielded, (int, float)):
            self.schedule(
                float(yielded), lambda: self._step_process(gen, None, result)
            )
        else:
            raise TypeError(
                f"process yielded {yielded!r}; expected Future or delay"
            )

    def all_of(self, futures: list[Future]) -> Future:
        """Future completing (with a list of values) once all inputs complete."""
        combined = self.future()
        if not futures:
            combined.complete([])
            return combined
        remaining = len(futures)
        values: list[Any] = [None] * len(futures)

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                nonlocal remaining
                values[index] = value
                remaining -= 1
                if remaining == 0:
                    combined.complete(values)

            return cb

        for index, future in enumerate(futures):
            future.add_callback(make_cb(index))
        return combined

    # -- execution -----------------------------------------------------------------

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Process events until the queue drains (or a bound is hit).

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            # bound check happens BEFORE the pop: a previous version popped
            # first and broke without executing, silently losing one event
            # per bounded run call
            if max_events is not None and processed >= max_events:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn()
            processed += 1
            self._events_processed += 1
            if self._listeners:
                for listener in tuple(self._listeners):
                    listener()
        if until is not None and (not self._queue or self._queue[0].time > until):
            self.now = max(self.now, until)
        return processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:
        return f"SimEngine(now={self.now:.6g}, pending={self.pending_events})"
