"""Discrete-event simulation core on a flat, array-backed calendar queue.

Events are ordered by ``(time, sequence)`` — the sequence number makes
simultaneous events fire in scheduling order, so every run of the same
scenario is deterministic regardless of hash randomization or dict
ordering.

The queue is a struct-of-arrays calendar rather than a heap of event
objects:

* **sorted run** — two parallel numpy arrays (``float64`` times,
  ``int64`` sequence numbers) sorted by ``(time, seq)``, consumed through
  a cursor.  Same-timestamp events form a contiguous slice of the run and
  are dispatched as one batch.
* **overflow heap** — events scheduled since the last merge live in a
  small ``(time, seq)`` tuple heap.  Because sequence numbers are
  monotone, every overflow entry sorts after every run entry at equal
  timestamps, which is what makes batched run dispatch safe.  When the
  overflow outgrows the remaining run it is merged in with one
  ``numpy.lexsort`` — amortized O(1) per event.
* **callback table** — ``seq -> callable``.  Cancellation removes the
  entry (the array slot becomes a tombstone, skipped on pop); when more
  than half the pending slots are tombstones the queue compacts itself
  and counts it in :attr:`SimEngine.compactions`.

Two programming styles are supported on top of the raw event queue:

* **callbacks** — ``engine.schedule(delay, fn)``;
* **processes** — generator coroutines that ``yield`` either a float delay
  or a :class:`Future`; the engine resumes them when the delay elapses or
  the future completes.  The runtime system and the MPI baseline are
  written in this style.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable, Generator

import numpy as np

#: merge the overflow heap into the sorted run once it outgrows both this
#: floor and the unconsumed remainder of the run
_MERGE_FLOOR = 1024

_EMPTY_TIMES = np.empty(0, dtype=np.float64)
_EMPTY_SEQS = np.empty(0, dtype=np.int64)


class Event:
    """Handle for a scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, engine: "SimEngine") -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._engine._cancel(self.seq)

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6g}, seq={self.seq}{flag})"


class Future:
    """A completable one-shot value, usable from coroutine processes.

    ``yield future`` inside a process suspends it until ``complete`` is
    called; the completed value becomes the result of the ``yield``
    expression.  Completing twice is an error; callbacks added after
    completion run immediately.
    """

    __slots__ = ("engine", "done", "value", "_callbacks")

    def __init__(self, engine: "SimEngine") -> None:
        self.engine = engine
        self.done = False
        self.value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    def complete(self, value: Any = None) -> None:
        if self.done:
            raise RuntimeError("future completed twice")
        self.done = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self.done:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:
        return f"Future(done={self.done})"


ProcessGen = Generator[Any, Any, Any]


class SimEngine:
    """Deterministic discrete-event loop over the flat calendar queue."""

    __slots__ = (
        "now",
        "compactions",
        "_run_times",
        "_run_seqs",
        "_rt",
        "_rs",
        "_run_pos",
        "_over",
        "_fns",
        "_next_seq",
        "_cancelled",
        "_gen",
        "_events_processed",
        "_listeners",
    )

    def __init__(self) -> None:
        self.now = 0.0
        #: number of tombstone-compaction passes the queue has performed
        self.compactions = 0
        # sorted run (struct-of-arrays) + python-list dispatch mirrors;
        # the numpy arrays are canonical storage for merge/compaction,
        # the lists give O(1) scalar reads in the dispatch loop
        self._run_times = _EMPTY_TIMES
        self._run_seqs = _EMPTY_SEQS
        self._rt: list[float] = []
        self._rs: list[int] = []
        self._run_pos = 0
        # overflow: (time, seq) heap of events scheduled since last merge
        self._over: list[tuple[float, int]] = []
        # seq -> callback; absent seq == cancelled tombstone
        self._fns: dict[int, Callable[[], None]] = {}
        self._next_seq = 0
        self._cancelled = 0
        # bumped by merge/compaction so an active run() reloads its locals
        self._gen = 0
        self._events_processed = 0
        # post-event observers (e.g. the runtime invariant sentinel);
        # called with no arguments after each executed event
        self._listeners: list[Callable[[], None]] = []

    def add_listener(self, fn: Callable[[], None]) -> None:
        """Register an observer invoked after every executed event."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[], None]) -> None:
        """Unregister an observer added with :meth:`add_listener`."""
        if fn in self._listeners:
            self._listeners.remove(fn)

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        self._fns[seq] = fn
        heapq.heappush(self._over, (time, seq))
        return Event(time, seq, self)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute simulated time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._next_seq
        self._next_seq = seq + 1
        self._fns[seq] = fn
        heapq.heappush(self._over, (time, seq))
        return Event(time, seq, self)

    def future(self) -> Future:
        return Future(self)

    # -- coroutine processes ---------------------------------------------------------

    def spawn(self, gen: ProcessGen) -> Future:
        """Run a generator process; the returned future completes with its
        ``return`` value when the process finishes."""
        result = self.future()
        self._step_process(gen, None, result)
        return result

    def _step_process(self, gen: ProcessGen, send_value: Any, result: Future) -> None:
        try:
            yielded = gen.send(send_value)
        except StopIteration as stop:
            result.complete(stop.value)
            return
        if isinstance(yielded, Future):
            yielded.add_callback(
                lambda value: self._step_process(gen, value, result)
            )
        elif isinstance(yielded, (int, float)):
            self.schedule(
                float(yielded), lambda: self._step_process(gen, None, result)
            )
        else:
            raise TypeError(
                f"process yielded {yielded!r}; expected Future or delay"
            )

    def all_of(self, futures: list[Future]) -> Future:
        """Future completing (with a list of values) once all inputs complete."""
        combined = self.future()
        if not futures:
            combined.complete([])
            return combined
        remaining = len(futures)
        values: list[Any] = [None] * len(futures)

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                nonlocal remaining
                values[index] = value
                remaining -= 1
                if remaining == 0:
                    combined.complete(values)

            return cb

        for index, future in enumerate(futures):
            future.add_callback(make_cb(index))
        return combined

    # -- queue maintenance ----------------------------------------------------------

    def _cancel(self, seq: int) -> None:
        if self._fns.pop(seq, None) is None:
            return  # already executed, already cancelled, or never queued
        self._cancelled += 1
        pending_slots = (len(self._rs) - self._run_pos) + len(self._over)
        if self._cancelled * 2 > pending_slots:
            self._compact()

    def _merge(self) -> None:
        """Fold the overflow heap into the sorted run with one lexsort."""
        over = self._over
        if not over:
            return
        count = len(over)
        times = np.concatenate(
            (
                self._run_times[self._run_pos :],
                np.fromiter((e[0] for e in over), dtype=np.float64, count=count),
            )
        )
        seqs = np.concatenate(
            (
                self._run_seqs[self._run_pos :],
                np.fromiter((e[1] for e in over), dtype=np.int64, count=count),
            )
        )
        order = np.lexsort((seqs, times))
        self._run_times = times[order]
        self._run_seqs = seqs[order]
        self._rt = self._run_times.tolist()
        self._rs = self._run_seqs.tolist()
        self._run_pos = 0
        over.clear()
        self._gen += 1

    def _compact(self) -> None:
        """Drop tombstoned slots from both the run and the overflow."""
        self.compactions += 1
        fns = self._fns
        times = self._run_times[self._run_pos :]
        seqs = self._run_seqs[self._run_pos :]
        if len(seqs):
            if fns:
                live = np.isin(
                    seqs,
                    np.fromiter(fns.keys(), dtype=np.int64, count=len(fns)),
                )
                times = np.ascontiguousarray(times[live])
                seqs = np.ascontiguousarray(seqs[live])
            else:
                times = _EMPTY_TIMES
                seqs = _EMPTY_SEQS
        self._run_times = times
        self._run_seqs = seqs
        self._rt = times.tolist()
        self._rs = seqs.tolist()
        self._run_pos = 0
        if self._over:
            self._over = [e for e in self._over if e[1] in fns]
            heapq.heapify(self._over)
        self._cancelled = 0
        self._gen += 1

    def _peek_time(self) -> float:
        """Time of the earliest pending slot (tombstones included)."""
        head = inf
        if self._run_pos < len(self._rt):
            head = self._rt[self._run_pos]
        if self._over and self._over[0][0] < head:
            head = self._over[0][0]
        return head

    # -- execution -----------------------------------------------------------------

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Process events until the queue drains (or a bound is hit).

        Returns the number of events processed by this call.
        """
        horizon = inf if until is None else until
        limit = inf if max_events is None else max_events
        processed = 0
        if len(self._over) > min(_MERGE_FLOOR, 32 + len(self._rs) - self._run_pos):
            self._merge()
        fns = self._fns
        listeners = self._listeners
        rt, rs = self._rt, self._rs
        pos, n = self._run_pos, len(self._rs)
        over = self._over
        gen = self._gen
        while processed < limit:
            if len(over) > _MERGE_FLOOR and len(over) > n - pos:
                self._run_pos = pos
                self._merge()
                rt, rs = self._rt, self._rs
                pos, n = 0, len(rs)
                gen = self._gen
            if pos < n:
                t = rt[pos]
                from_over = bool(over) and over[0][0] < t
            elif over:
                from_over = True
            else:
                break
            if from_over:
                t = over[0][0]
                if t > horizon:
                    break
                seq = heapq.heappop(over)[1]
                fn = fns.pop(seq, None)
                if fn is None:
                    self._cancelled -= 1
                    continue
                self.now = t
                self._run_pos = pos  # keep honest: fn may compact/merge
                fn()
                processed += 1
                self._events_processed += 1
                if listeners:
                    for listener in tuple(listeners):
                        listener()
                if self._gen != gen:
                    rt, rs = self._rt, self._rs
                    pos, n = self._run_pos, len(rs)
                    gen = self._gen
                continue
            if t > horizon:
                break
            # batched same-timestamp dispatch: every run entry at time t
            # precedes every overflow entry at time t (overflow seqs are
            # strictly larger), so the whole contiguous slice is safe
            end = pos + 1
            while end < n and rt[end] == t:
                end += 1
            self.now = t
            while pos < end and processed < limit:
                seq = rs[pos]
                pos += 1
                fn = fns.pop(seq, None)
                if fn is None:
                    self._cancelled -= 1
                    continue
                self._run_pos = pos
                fn()
                processed += 1
                self._events_processed += 1
                if listeners:
                    for listener in tuple(listeners):
                        listener()
                if self._gen != gen:
                    rt, rs = self._rt, self._rs
                    pos, n = self._run_pos, len(rs)
                    gen = self._gen
                    break
        self._run_pos = pos
        if until is not None and self._peek_time() > until:
            self.now = max(self.now, until)
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._fns)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:
        return f"SimEngine(now={self.now:.6g}, pending={self.pending_events})"
