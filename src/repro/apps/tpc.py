"""TPC — two-point correlation search over a kd-tree (paper §4.1).

For each query point in 7-D space, count the points within a fixed radius
via a pruned kd-tree traversal (Gray & Moore's n-body methods).  Paper
scale: 2²⁹ points in ``[0, 100)⁷``, radius 20, metric *queries per
second*.

The kd-tree is distributed by sub-trees (one contiguous band of
distribution-level sub-trees per process, the top tree replicated as
structural metadata).  A query runs in two phases:

1. **top traversal** at the query's home node — prunes/accepts whole
   sub-trees and identifies the distribution roots needing real descent;
2. **sub-tree traversals** at the owners of those roots.

The two ports differ exactly as the paper describes (§4.2):

* :func:`tpc_allscale` — one small task per (query, sub-tree), forwarded
  by the scheduler to the owning locality.  "The resulting high inter-node
  communication overhead for transferring tasks diminishes overall
  performance and grows dominant for larger node counts."  The
  ``task_batch`` knob implements the aggregation the paper says is
  "technically possible [but] not yet integrated" — the batching ablation.
* :func:`tpc_mpi` — the reference "aggregates multiple queries to reduce
  latency sensitivity and improve bandwidth utilization": per round, each
  rank groups a batch of queries by owner and exchanges them with two
  all-to-alls.

Cost calibration: ``point_flops``/``visit_flops`` are set so single-node
throughput lands near the paper's Fig. 7 left edge (≈350 q/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.analysis.program import TaskProgram
from repro.apps.common import AppResult
from repro.apps.stencil import replace_functional
from repro.items.kdtree import (
    KDTreeItem,
    KDTreeStructure,
    Visit,
    build_kdtree,
    synthetic_kdtree,
)
from repro.mpi.comm import Communicator
from repro.mpi.program import run_spmd
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import SchedulingPolicy
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class TPCWorkload:
    """Parameters of one TPC run."""

    #: total points in the tree; paper: 2**29
    total_points: int = 2**29
    dims: int = 7
    low: float = 0.0
    high: float = 100.0
    radius: float = 20.0
    #: queries issued per node (weak scaling of the query load)
    queries_per_node: int = 64
    #: if set, the total offered load per measurement window overrides
    #: queries_per_node × nodes.  A fixed window is how the throughput
    #: difference manifests: MPI's aggregation pipelines the window densely
    #: while the per-query task decomposition cannot saturate large
    #: clusters — the paper's "latency sensitivity" (§4.2)
    queries_total: int | None = None
    #: kd-tree depth (levels); leaves hold total_points / 2**(depth-1)
    depth: int = 16
    #: AllScale: queries aggregated per task bundle (1 = paper's prototype)
    task_batch: int = 1
    #: AllScale: traversal task units are sub-trees of this height — a
    #: *fixed* granularity independent of the node count, matching the
    #: prototype's recursive decomposition ("a large number of inherently
    #: small tasks").  depth 16, height 9 → up to 64 units per query.
    task_subtree_height: int = 9
    #: deal bands out round-robin (the flexible Fig. 4b distribution) rather
    #: than in contiguous blocks; round-robin maximizes locality crossings
    interleave_ownership: bool = True
    #: MPI: queries aggregated per all-to-all round
    mpi_batch: int = 64
    #: AllScale: number of submission waves the query window arrives in
    #: (1 = everything offered at once; >1 = streamed arrival)
    submission_waves: int = 1
    #: traversal cost constants (see module docstring)
    visit_flops: float = 200.0
    point_flops: float = 50.0
    #: build a real point set (small scales only) for exact counting
    functional: bool = False
    seed: int = 12345

    def total_queries(self, nodes: int) -> int:
        if self.queries_total is not None:
            return max(1, self.queries_total)
        return self.queries_per_node * nodes


@dataclass
class QueryPlan:
    """Result of one query's top-tree traversal."""

    top_count: float
    top_visits: int
    #: distribution roots requiring a real descent
    recurse_roots: list[int] = field(default_factory=list)


@dataclass
class TPCProblem:
    """The shared problem instance both ports run against."""

    workload: TPCWorkload
    nodes: int
    structure: KDTreeStructure
    item: KDTreeItem
    queries: np.ndarray
    #: level whose sub-trees form the ownership bands
    band_level: int
    #: (deeper) level whose sub-trees form the traversal task units
    task_level: int
    owner_of_root: dict[int, int]
    plans: list[QueryPlan]
    #: (query index, task root) -> (flops, count) of the sub-tree descent
    band_work: dict[tuple[int, int], tuple[float, float]]
    #: per-process owned region (placement for the AllScale runtime)
    placement: list = field(default_factory=list)

    def exact_count(self, qi: int) -> float:
        """Reference count for query ``qi`` straight from the structure."""
        return self.structure.query(
            self.queries[qi], self.workload.radius
        ).count

    def traversal_cost(self, stats_visits: float, stats_scanned: float) -> float:
        wl = self.workload
        return stats_visits * wl.visit_flops + stats_scanned * wl.point_flops


def make_problem(workload: TPCWorkload, nodes: int) -> TPCProblem:
    """Build the tree, the queries, and all per-query traversal plans."""
    rng = np.random.default_rng(workload.seed)
    if workload.functional:
        points = rng.uniform(
            workload.low, workload.high, size=(workload.total_points, workload.dims)
        )
        structure = build_kdtree(points, workload.depth)
    else:
        structure = synthetic_kdtree(
            workload.total_points,
            workload.depth,
            [workload.low] * workload.dims,
            [workload.high] * workload.dims,
        )
    item = KDTreeItem(structure, name="tpc.kdtree")
    queries = rng.uniform(
        workload.low, workload.high, size=(workload.total_queries(nodes), workload.dims)
    )

    # ownership bands: the shallowest level with a sub-tree per process
    band_level = 1
    while (1 << (band_level - 1)) < nodes and band_level < structure.depth:
        band_level += 1
    # traversal task units: fixed-height sub-trees (granularity does not
    # change with the node count), but never shallower than the bands and
    # never below the leaves
    task_level = structure.depth - workload.task_subtree_height
    task_level = max(band_level, min(structure.depth - 1, task_level))

    band_roots = list(range(1 << (band_level - 1), 1 << band_level))
    owner_of_band: dict[int, int] = {}
    per = len(band_roots) / nodes
    for k, root in enumerate(band_roots):
        if workload.interleave_ownership:
            owner_of_band[root] = k % nodes
        else:
            owner_of_band[root] = min(nodes - 1, int(k / per))

    # a task root's owner is its band ancestor's owner
    owner_of_root: dict[int, int] = {}
    for root in range(1 << (task_level - 1), 1 << task_level):
        ancestor = root >> (task_level - band_level)
        owner_of_root[root] = owner_of_band[ancestor]

    # per-process owned regions: the bands it owns; process 0 additionally
    # owns the (replicated-as-metadata) top tree
    from repro.regions.tree import TreeRegion

    geometry = structure.geometry
    placement = []
    top = TreeRegion.full(geometry)
    for root in band_roots:
        top = top.difference(TreeRegion.of_subtrees(geometry, [root]))
    for pid in range(nodes):
        mine = [r for r in band_roots if owner_of_band[r] == pid]
        region = TreeRegion.of_subtrees(geometry, mine)
        if pid == 0:
            region = region.union(top)
        placement.append(region)

    plans: list[QueryPlan] = []
    band_work: dict[tuple[int, int], tuple[float, float]] = {}
    radius = workload.radius
    for qi in range(len(queries)):
        q = queries[qi]
        plan = _plan_top(structure, q, radius, task_level)
        plans.append(plan)
        for root in plan.recurse_roots:
            stats = structure.query_from(root, q, radius)
            flops = (
                stats.visited_nodes * workload.visit_flops
                + stats.scanned_points * workload.point_flops
            )
            band_work[(qi, root)] = (flops, stats.count)
    return TPCProblem(
        workload=workload,
        nodes=nodes,
        structure=structure,
        item=item,
        queries=queries,
        band_level=band_level,
        task_level=task_level,
        owner_of_root=owner_of_root,
        plans=plans,
        band_work=band_work,
        placement=placement,
    )


def _plan_top(
    structure: KDTreeStructure, q: np.ndarray, radius: float, dist_level: int
) -> QueryPlan:
    """Traverse the (replicated) top tree, collecting sub-trees to descend."""
    plan = QueryPlan(top_count=0.0, top_visits=0)
    stack = [1]
    while stack:
        node = stack.pop()
        plan.top_visits += 1
        kind = structure.classify(node, q, radius)
        if kind is Visit.PRUNE_OUT:
            continue
        if kind is Visit.PRUNE_IN:
            plan.top_count += float(structure.counts[node])
            continue
        if node.bit_length() == dist_level:
            plan.recurse_roots.append(node)
            continue
        stack.extend(structure.geometry.children(node))
    return plan


# ---------------------------------------------------------------------------
# AllScale port
# ---------------------------------------------------------------------------


def tpc_batch_task(problem: TPCProblem, batch: list[int]) -> TaskSpec:
    """The task tree of one query batch (module-level so the offline
    placement planner can build the same specs the driver submits)."""
    workload = problem.workload
    # the root's requirement must subsume its children's (the spawn
    # rule's precondition): the union of every sub-tree any batched
    # query descends into.  Without it the band children's reads
    # escape the root — the static analyzer's coverage check flags
    # exactly that (see tests/test_analysis_apps.py).
    batch_roots = sorted(
        {root for qi in batch for root in problem.plans[qi].recurse_roots}
    )
    batch_reads = problem.item.empty_region()
    for root in batch_roots:
        batch_reads = batch_reads.union(problem.item.subtree_region(root))

    def splitter() -> list[TaskSpec]:
        children: list[TaskSpec] = []
        top_flops = sum(
            problem.plans[qi].top_visits for qi in batch
        ) * workload.visit_flops
        top_count = sum(problem.plans[qi].top_count for qi in batch)
        children.append(
            TaskSpec(
                name=f"tpc.top[{batch[0]}..]",
                flops=top_flops,
                size_hint=1.0,
                body=lambda ctx, v=top_count: v,
                body_in_virtual=True,
            )
        )
        # one child per touched sub-tree, carrying every batched query
        # that needs it — task_batch=1 reproduces the paper's prototype
        per_root: dict[int, tuple[float, float]] = {}
        for qi in batch:
            for root in problem.plans[qi].recurse_roots:
                flops, count = problem.band_work[(qi, root)]
                agg = per_root.get(root, (0.0, 0.0))
                per_root[root] = (agg[0] + flops, agg[1] + count)
        for root, (flops, count) in sorted(per_root.items()):
            children.append(
                TaskSpec(
                    name=f"tpc.band{root}[{batch[0]}..]",
                    reads={problem.item: problem.item.subtree_region(root)},
                    flops=flops,
                    size_hint=1.0,
                    body=lambda ctx, v=count: v,
                    body_in_virtual=True,
                )
            )
        return children

    return TaskSpec(
        name=f"tpc.query[{batch[0]}..{batch[-1]}]",
        reads=(
            {problem.item: batch_reads}
            if not batch_reads.is_empty()
            else {}
        ),
        size_hint=float(len(batch) + 2),
        granularity=1.0,
        splitter=splitter,
        combiner=lambda values: float(sum(values)),
    )


def tpc_program(problem: TPCProblem) -> TaskProgram:
    """The driver's exact submission structure, built without a runtime.

    One phase per submission wave — batches within a wave are submitted
    concurrently, waves are separated by an ``all_of`` barrier, exactly
    like :func:`tpc_allscale`'s driver.
    """
    workload = problem.workload
    batches = _query_batches(problem, workload.task_batch)
    waves = max(1, min(workload.submission_waves, len(batches)))
    per_wave = (len(batches) + waves - 1) // waves
    program = TaskProgram(f"tpc[{problem.nodes}]")
    for wave in range(waves):
        chunk = batches[wave * per_wave : (wave + 1) * per_wave]
        if chunk:
            program.add_phase(
                *[tpc_batch_task(problem, batch) for batch in chunk]
            )
    return program


def tpc_allscale(
    cluster: Cluster,
    workload: TPCWorkload,
    config: RuntimeConfig | None = None,
    policy: SchedulingPolicy | None = None,
    problem: TPCProblem | None = None,
    on_runtime=None,
) -> AppResult:
    """Run the AllScale port: per-query task trees routed by the scheduler.

    ``on_runtime`` is called with the assembled runtime before the
    driver starts (churn-bench hook; see :func:`stencil_allscale`).
    """
    if problem is None:
        problem = make_problem(workload, cluster.num_nodes)
    if config is None:
        config = RuntimeConfig()
    config = replace_functional(config, False)
    runtime = AllScaleRuntime(cluster, config, policy)
    runtime.register_item(problem.item, placement=problem.placement)
    batches = _query_batches(problem, workload.task_batch)
    if on_runtime is not None:
        on_runtime(runtime)

    def driver() -> Generator:
        if runtime.balancer is not None:
            runtime.balancer.start()
        t0 = runtime.now
        waves = max(1, min(workload.submission_waves, len(batches)))
        per_wave = (len(batches) + waves - 1) // waves
        values: list = []
        for wave in range(waves):
            chunk = batches[wave * per_wave : (wave + 1) * per_wave]
            # submission points rotate over the processes that can take
            # work *now* — on a static cluster this is every pid, under
            # churn it skips corpses and leavers
            origins = runtime.available_processes() or runtime.alive_processes()
            treetures = [
                runtime.submit(
                    tpc_batch_task(problem, batch),
                    origin=origins[(wave * per_wave + k) % len(origins)],
                )
                for k, batch in enumerate(chunk)
            ]
            wave_values = yield runtime.engine.all_of(
                [t.future for t in treetures]
            )
            values.extend(wave_values)
        if runtime.balancer is not None:
            runtime.balancer.stop()
        return runtime.now - t0, values

    result_future = runtime.spawn(driver())
    runtime.run()
    if not result_future.done:
        raise RuntimeError("TPC AllScale driver did not complete")
    elapsed, counts = result_future.value
    return AppResult(
        app="tpc",
        system="allscale",
        nodes=cluster.num_nodes,
        elapsed=elapsed,
        work=float(len(problem.queries)),
        extras={
            "runtime": runtime,
            "counts": counts,
            "batches": batches,
            "problem": problem,
        },
    )


def _query_batches(problem: TPCProblem, batch_size: int) -> list[list[int]]:
    if batch_size < 1:
        raise ValueError(f"task_batch must be >= 1, got {batch_size}")
    indices = list(range(len(problem.queries)))
    return [
        indices[i : i + batch_size] for i in range(0, len(indices), batch_size)
    ]


# ---------------------------------------------------------------------------
# MPI port
# ---------------------------------------------------------------------------


def tpc_mpi(
    cluster: Cluster,
    workload: TPCWorkload,
    problem: TPCProblem | None = None,
) -> AppResult:
    """Run the MPI reference port with query aggregation (paper §4.2)."""
    if problem is None:
        problem = make_problem(workload, cluster.num_nodes)
    nodes = cluster.num_nodes
    query_bytes = workload.dims * 8 + 8
    per_rank = [
        [qi for qi in range(len(problem.queries)) if qi % nodes == rank]
        for rank in range(nodes)
    ]
    totals: dict[int, float] = {}

    def rank_main(comm: Communicator) -> Generator:
        rank = comm.rank
        mine = per_rank[rank]
        yield from comm.barrier(tag=700)
        t0 = comm.engine.now
        total = 0.0
        batch_size = max(1, workload.mpi_batch)
        for start in range(0, len(mine), batch_size):
            batch = mine[start : start + batch_size]
            # top traversal of the whole batch, locally
            top_flops = sum(
                problem.plans[qi].top_visits for qi in batch
            ) * workload.visit_flops
            yield comm.compute(top_flops)
            total += sum(problem.plans[qi].top_count for qi in batch)
            # group the needed sub-tree descents by owner
            outgoing: list[list[tuple[int, int]]] = [[] for _ in range(nodes)]
            for qi in batch:
                for root in problem.plans[qi].recurse_roots:
                    outgoing[problem.owner_of_root[root]].append((qi, root))
            # ship aggregated query bundles (one all-to-all per round)
            payloads = [
                (max(1, len(items) * query_bytes), items)
                for items in outgoing
            ]
            incoming = yield from comm.alltoall(payloads, tag=7100 + start % 50)
            # process everyone's requests against the local sub-trees
            replies: list[tuple[int, float]] = []
            work_flops = 0.0
            for src, items in enumerate(incoming):
                subtotal = 0.0
                for qi, root in items or []:
                    flops, count = problem.band_work[(qi, root)]
                    work_flops += flops
                    subtotal += count
                replies.append((src, subtotal))
            if work_flops:
                yield comm.compute(work_flops)
            # return aggregated counts
            reply_payloads = [(8, value) for _src, value in replies]
            returned = yield from comm.alltoall(
                reply_payloads, tag=7500 + start % 50
            )
            total += sum(v for v in returned if v is not None)
        yield from comm.barrier(tag=701)
        totals[rank] = total
        return comm.engine.now - t0

    times = run_spmd(cluster, rank_main)
    return AppResult(
        app="tpc",
        system="mpi",
        nodes=nodes,
        elapsed=max(times),
        work=float(len(problem.queries)),
        extras={"totals": totals, "problem": problem},
    )
