"""iPiC3D — implicit particle-in-cell plasma simulator (paper §4.1).

The paper's real-world application: charged particles interacting with
electromagnetic fields.  Its data structures are "three regular 3D grids —
two holding electromagnetic field data, while an additional grid holds
lists of particles", with 48·10⁶ particles per node at paper scale and
*particle updates per second* as the metric.

The simulated port models the per-step structure of the implicit-moment
PIC cycle:

1. **field solve** — stencil sweeps over the E and B grids (halo radius 1);
2. **particle push + moment gather** — per-cell work proportional to the
   cell's particle population (the dominant cost);
3. **particle exchange** — particles crossing cell boundaries move between
   neighboring nodes, modelled as a boundary-cell transfer grid whose
   element size is the expected crossing volume.

The AllScale port expresses each phase as a ``pfor`` over the respective
grid with compiler-style requirement functions; the MPI port uses static
blocks, ghost exchange, and neighbor particle exchange.  Functional
particle physics is out of scope of the paper's evaluation (it measures
throughput, not plasma observables); a real miniature PIC push using the
same API lives in ``examples/particle_in_cell.py``.

Calibration note: ``flops_per_particle_update`` is an *effective* cost
matching the paper's measured single-node throughput (~6.5·10⁴ particle
updates/s/node, the Fig. 7 left edge) — it folds the full implicit-moment
iteration (multiple field/moment sub-iterations per visible update) into
one constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.analysis.program import TaskProgram
from repro.api import box_region, expand_box, pfor_task
from repro.api.prec import default_granularity, loop_granularity
from repro.apps.common import AppResult
from repro.apps.stencil import replace_functional
from repro.items.grid import Grid
from repro.mpi.comm import Communicator
from repro.mpi.halo import plan_halo_exchange
from repro.mpi.program import run_spmd
from repro.regions.box import grid_block_decomposition
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import SchedulingPolicy
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class IPic3DWorkload:
    """Parameters of one iPiC3D run."""

    #: particles per node; paper: 48·10⁶
    particles_per_node: int = 48_000_000
    #: per-node field grid (cube side); fields are secondary to particles
    cells_per_node_side: int = 32
    timesteps: int = 4
    #: effective FLOPs per visible particle update (see calibration note)
    flops_per_particle_update: float = 7.0e5
    #: field-solver FLOPs per cell per step (both grids together)
    flops_per_field_cell: float = 60.0
    #: bytes of one particle on the wire (position+velocity+charge, 7 doubles)
    particle_bytes: int = 56
    #: fraction of a boundary cell's particles crossing per step
    crossing_fraction: float = 0.05

    def field_shape(self, nodes: int) -> tuple[int, int, int]:
        """Weak scaling: stack per-node cubes along axis 0."""
        side = self.cells_per_node_side
        return (side * nodes, side, side)

    def particles_per_cell(self, nodes: int) -> float:
        side = self.cells_per_node_side
        return self.particles_per_node / float(side**3)

    def total_particles(self, nodes: int) -> int:
        return self.particles_per_node * nodes

    def total_updates(self, nodes: int) -> float:
        """Particle updates in the measured phase (Fig. 7's numerator)."""
        return float(self.total_particles(nodes)) * self.timesteps


def _make_items(workload: IPic3DWorkload, nodes: int) -> tuple[Grid, Grid, Grid, Grid]:
    shape = workload.field_shape(nodes)
    ppc = workload.particles_per_cell(nodes)
    # E and B carry 3 components per cell (3 × 8 B)
    e_field = Grid(shape, name="ipic3d.E", element_bytes=24)
    b_field = Grid(shape, name="ipic3d.B", element_bytes=24)
    # the particle grid's per-element weight is a full cell population
    particles = Grid(
        shape,
        name="ipic3d.P",
        element_bytes=max(1, int(ppc * workload.particle_bytes)),
    )
    # crossing buffers: only the expected migrating volume per cell
    xfer = Grid(
        shape,
        name="ipic3d.X",
        element_bytes=max(
            1, int(ppc * workload.crossing_fraction * workload.particle_bytes)
        ),
    )
    return e_field, b_field, particles, xfer


def _noop_body(ctx, box) -> None:
    return None


def ipic3d_init_task(
    item: Grid, cost: float, granularity: float | None = None
) -> TaskSpec:
    """Spread one grid (fields or particle populations) by first touch."""
    return pfor_task(
        (0, 0, 0),
        item.shape,
        body=_noop_body,
        writes=lambda box, g=item: {g: box_region(g, box)},
        flops_per_element=cost,
        granularity=granularity,
        name=f"init.{item.name}",
    )


def ipic3d_field_task(
    step: int,
    dst: Grid,
    src: Grid,
    workload: IPic3DWorkload,
    granularity: float | None = None,
) -> TaskSpec:
    """One field-solver sweep: ``dst`` updated from ``src``'s halo."""
    return pfor_task(
        (0, 0, 0),
        dst.shape,
        body=_noop_body,
        reads=lambda box, g=src: {g: expand_box(g, box, 1)},
        writes=lambda box, g=dst: {g: box_region(g, box)},
        flops_per_element=workload.flops_per_field_cell / 2.0,
        granularity=granularity,
        name=f"field{step}.{dst.name}",
    )


def ipic3d_push_task(
    step: int,
    e_field: Grid,
    b_field: Grid,
    particles: Grid,
    xfer: Grid,
    workload: IPic3DWorkload,
    ppc: float,
    granularity: float | None = None,
) -> TaskSpec:
    """Particle push + moment gather: the dominant per-step cost."""
    return pfor_task(
        (0, 0, 0),
        particles.shape,
        body=_noop_body,
        reads=lambda box: {
            e_field: box_region(e_field, box),
            b_field: box_region(b_field, box),
            particles: box_region(particles, box),
        },
        writes=lambda box: {
            particles: box_region(particles, box),
            xfer: box_region(xfer, box),
        },
        flops_per_element=ppc * workload.flops_per_particle_update,
        granularity=granularity,
        name=f"push{step}",
    )


def ipic3d_absorb_task(
    step: int,
    particles: Grid,
    xfer: Grid,
    workload: IPic3DWorkload,
    ppc: float,
    granularity: float | None = None,
) -> TaskSpec:
    """Absorb neighbors' crossing buffers into the local populations."""
    return pfor_task(
        (0, 0, 0),
        particles.shape,
        body=_noop_body,
        reads=lambda box: {xfer: expand_box(xfer, box, 1)},
        writes=lambda box: {particles: box_region(particles, box)},
        flops_per_element=ppc * workload.crossing_fraction * 10.0,
        granularity=granularity,
        name=f"absorb{step}",
    )


def ipic3d_program(
    workload: IPic3DWorkload,
    nodes: int,
    *,
    cores_per_node: int = 20,
    config: RuntimeConfig | None = None,
) -> TaskProgram:
    """The driver's exact submission structure, built without a runtime."""
    config = config or RuntimeConfig()
    shape = workload.field_shape(nodes)
    cells = float(shape[0] * shape[1] * shape[2])
    gran = loop_granularity(
        cells,
        nodes,
        cores_per_node,
        config.min_task_size,
        config.oversubscription,
    )
    e_field, b_field, particles, xfer = _make_items(workload, nodes)
    ppc = workload.particles_per_cell(nodes)
    program = TaskProgram(f"ipic3d[{nodes}]")
    for item, cost in (
        (e_field, 3.0),
        (b_field, 3.0),
        (particles, ppc * 2.0),
    ):
        program.add_phase(ipic3d_init_task(item, cost, granularity=gran))
    for step in range(workload.timesteps):
        for dst, src in ((e_field, b_field), (b_field, e_field)):
            program.add_phase(
                ipic3d_field_task(step, dst, src, workload, granularity=gran)
            )
        program.add_phase(
            ipic3d_push_task(
                step,
                e_field,
                b_field,
                particles,
                xfer,
                workload,
                ppc,
                granularity=gran,
            )
        )
        program.add_phase(
            ipic3d_absorb_task(
                step, particles, xfer, workload, ppc, granularity=gran
            )
        )
    return program


def ipic3d_allscale(
    cluster: Cluster,
    workload: IPic3DWorkload,
    config: RuntimeConfig | None = None,
    policy: SchedulingPolicy | None = None,
    on_runtime=None,
) -> AppResult:
    """Run the AllScale port of iPiC3D.

    ``on_runtime`` is called with the assembled runtime before the
    driver starts (churn-bench hook; see :func:`stencil_allscale`).
    """
    if config is None:
        config = RuntimeConfig()
    config = replace_functional(config, False)
    runtime = AllScaleRuntime(cluster, config, policy)
    nodes = cluster.num_nodes
    shape = workload.field_shape(nodes)
    e_field, b_field, particles, xfer = _make_items(workload, nodes)
    for item in (e_field, b_field, particles, xfer):
        runtime.register_item(item)
    ppc = workload.particles_per_cell(nodes)
    cells = float(shape[0] * shape[1] * shape[2])
    if on_runtime is not None:
        on_runtime(runtime)

    def driver() -> Generator:
        if runtime.balancer is not None:
            runtime.balancer.start()
        gran = default_granularity(runtime, cells)
        # initialization: spread fields and particle populations
        for item, cost in (
            (e_field, 3.0),
            (b_field, 3.0),
            (particles, ppc * 2.0),
        ):
            init = runtime.submit(
                ipic3d_init_task(item, cost, granularity=gran)
            )
            yield init.future
        t0 = runtime.now
        for step in range(workload.timesteps):
            # 1. field solve: E reads B's halo and vice versa
            for dst, src in ((e_field, b_field), (b_field, e_field)):
                sweep = runtime.submit(
                    ipic3d_field_task(
                        step, dst, src, workload, granularity=gran
                    )
                )
                yield sweep.future
            # 2. particle push + moments: per-cell cost ∝ population;
            #    reads local fields, emits crossing buffers
            push = runtime.submit(
                ipic3d_push_task(
                    step,
                    e_field,
                    b_field,
                    particles,
                    xfer,
                    workload,
                    ppc,
                    granularity=gran,
                )
            )
            yield push.future
            # 3. particle exchange: absorb neighbors' crossing buffers
            absorb = runtime.submit(
                ipic3d_absorb_task(
                    step, particles, xfer, workload, ppc, granularity=gran
                )
            )
            yield absorb.future
        if runtime.balancer is not None:
            runtime.balancer.stop()
        return runtime.now - t0

    result_future = runtime.spawn(driver())
    runtime.run()
    if not result_future.done:
        raise RuntimeError("iPiC3D AllScale driver did not complete")
    elapsed = result_future.value
    return AppResult(
        app="ipic3d",
        system="allscale",
        nodes=nodes,
        elapsed=elapsed,
        work=workload.total_updates(nodes),
        extras={"runtime": runtime},
    )


def ipic3d_mpi(cluster: Cluster, workload: IPic3DWorkload) -> AppResult:
    """Run the MPI reference port of iPiC3D."""
    nodes = cluster.num_nodes
    shape = workload.field_shape(nodes)
    blocks = grid_block_decomposition(shape, nodes)
    field_plan = plan_halo_exchange(blocks, radius=1, bytes_per_element=24)
    ppc = workload.particles_per_cell(nodes)
    crossing_bytes = ppc * workload.crossing_fraction * workload.particle_bytes
    particle_plan = plan_halo_exchange(
        blocks, radius=1, bytes_per_element=max(1, int(crossing_bytes))
    )

    def rank_main(comm: Communicator) -> Generator:
        rank = comm.rank
        cells = blocks[rank].size()
        yield comm.compute(cells * (6.0 + ppc * 2.0))  # initialization
        yield from comm.barrier(tag=800)
        t0 = comm.engine.now
        for step in range(workload.timesteps):
            # 1. field halo exchange (E and B) + field solve
            for idx, t in enumerate(field_plan.transfers):
                if t.src == rank:
                    comm.isend(t.dst, t.nbytes * 2, None, 2000 + idx)
            for idx, t in enumerate(field_plan.transfers):
                if t.dst == rank:
                    yield comm.recv(t.src, 2000 + idx)
            yield comm.compute(cells * workload.flops_per_field_cell)
            # 2. particle push
            yield comm.compute(
                cells * ppc * workload.flops_per_particle_update
            )
            # 3. particle exchange with neighbors
            for idx, t in enumerate(particle_plan.transfers):
                if t.src == rank:
                    comm.isend(t.dst, t.nbytes, None, 3000 + idx)
            for idx, t in enumerate(particle_plan.transfers):
                if t.dst == rank:
                    yield comm.recv(t.src, 3000 + idx)
            yield comm.compute(cells * ppc * workload.crossing_fraction * 10.0)
        yield from comm.barrier(tag=801)
        return comm.engine.now - t0

    times = run_spmd(cluster, rank_main)
    return AppResult(
        app="ipic3d",
        system="mpi",
        nodes=nodes,
        elapsed=max(times),
        work=workload.total_updates(nodes),
        extras={"blocks": blocks},
    )
