"""The paper's three evaluation applications (§4.1, Table 1).

=========  ==============================  ====================  ==========================
name       description                     data structure        performance metric
=========  ==============================  ====================  ==========================
stencil    2-D stencil kernel (PRK)        regular 2-D grid      FLOPS
iPiC3D     particle-in-cell simulator      multiple 3-D grids    particle updates / second
TPC        two-point-correlation search    kd-tree               queries / second
=========  ==============================  ====================  ==========================

Each module provides the AllScale port (driving the full runtime:
pfor/prec tasks, data item manager, index, scheduler) and the MPI
reference port (SPMD over the simulated communicator), both parameterized
by a workload dataclass.  Functional (really-computing) configurations are
used in tests at small scale; the paper-scale benchmark sweeps run in
virtual mode with identical control paths.
"""

from repro.apps.common import AppResult
from repro.apps.stencil import StencilWorkload, stencil_allscale, stencil_mpi
from repro.apps.ipic3d import IPic3DWorkload, ipic3d_allscale, ipic3d_mpi
from repro.apps.tpc import TPCWorkload, tpc_allscale, tpc_mpi

__all__ = [
    "AppResult",
    "StencilWorkload",
    "stencil_allscale",
    "stencil_mpi",
    "IPic3DWorkload",
    "ipic3d_allscale",
    "ipic3d_mpi",
    "TPCWorkload",
    "tpc_allscale",
    "tpc_mpi",
]
