"""2-D stencil application (paper §3.4 / §4, derived from the PRK suite).

A 5-point heat-diffusion stencil over a square-per-node grid, weak-scaled
along the first axis (20,000² elements per node at paper scale).  Two
ports:

* :func:`stencil_allscale` — the Fig. 6b program: ``pfor`` initialization,
  then a time loop of ``pfor`` update sweeps over API ``Grid`` items, with
  the runtime managing distribution, halos (read replication), and
  write-replica invalidation;
* :func:`stencil_mpi` — the reference: static block decomposition, ghost
  cells, isend/irecv halo exchange per step, node-wide compute.

In functional mode both ports move and compute real values, so tests can
check them against the sequential kernel and against each other; in
virtual mode only costs flow, enabling paper-scale sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.analysis.program import TaskProgram
from repro.api import expand_box, box_region, pfor_task
from repro.api.prec import default_granularity, loop_granularity
from repro.apps.common import AppResult
from repro.items.grid import Grid, GridFragment
from repro.mpi.comm import Communicator
from repro.mpi.halo import plan_halo_exchange
from repro.mpi.program import run_spmd
from repro.regions.box import Box, grid_block_decomposition
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import SchedulingPolicy
from repro.runtime.runtime import AllScaleRuntime
from repro.runtime.tasks import TaskSpec
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class StencilWorkload:
    """Parameters of one stencil run."""

    #: per-node square side; paper: 20,000 (20,000² elements per node)
    n_per_node: int = 20_000
    timesteps: int = 4
    #: FLOPs of the update kernel per element (Fig. 6: 4 adds, 1 sub, 1 mul
    #: by c, 1 mul by 4 → 7)
    flops_per_cell: float = 7.0
    diffusion: float = 0.1
    #: move/compute real values (tests) or only costs (benchmarks)
    functional: bool = False

    def global_shape(self, nodes: int) -> tuple[int, int]:
        """Weak scaling: stack the per-node squares along axis 0."""
        return (self.n_per_node * nodes, self.n_per_node)

    def interior_cells(self, nodes: int) -> int:
        rows, cols = self.global_shape(nodes)
        return (rows - 2) * (cols - 2)

    def total_flops(self, nodes: int) -> float:
        """The FLOP count of the measured phase (Fig. 7's numerator)."""
        return self.interior_cells(nodes) * self.timesteps * self.flops_per_cell


def _initial_value(coord: tuple[int, ...]) -> float:
    return float(coord[0] + coord[1])


def _init_body(grid: Grid):
    def body(ctx, box: Box) -> None:
        values = np.add.outer(
            np.arange(box.lo[0], box.hi[0], dtype=np.float64),
            np.arange(box.lo[1], box.hi[1], dtype=np.float64),
        )
        fragment = ctx.fragment(grid)
        assert isinstance(fragment, GridFragment)
        fragment.scatter(box, values)

    return body


def _step_body(src: Grid, dst: Grid, c: float, shape: tuple[int, int]):
    rows, cols = shape

    def body(ctx, box: Box) -> None:
        fa = ctx.fragment(src)
        fb = ctx.fragment(dst)
        halo = Box(
            (max(0, box.lo[0] - 1), max(0, box.lo[1] - 1)),
            (min(rows, box.hi[0] + 1), min(cols, box.hi[1] + 1)),
        )
        a = fa.gather(halo)
        i0 = box.lo[0] - halo.lo[0]
        j0 = box.lo[1] - halo.lo[1]
        h, w = box.widths()
        core = a[i0 : i0 + h, j0 : j0 + w]
        up = a[i0 - 1 : i0 - 1 + h, j0 : j0 + w]
        down = a[i0 + 1 : i0 + 1 + h, j0 : j0 + w]
        left = a[i0 : i0 + h, j0 - 1 : j0 - 1 + w]
        right = a[i0 : i0 + h, j0 + 1 : j0 + 1 + w]
        fb.scatter(box, core + c * (up + down + left + right - 4.0 * core))

    return body


def stencil_init_task(
    grid: Grid, granularity: float | None = None
) -> TaskSpec:
    """The initialization sweep of one buffer (Fig. 6b lines 5-7)."""
    return pfor_task(
        (0, 0),
        grid.shape,
        body=_init_body(grid),
        writes=lambda box, g=grid: {g: box_region(g, box)},
        flops_per_element=2.0,
        granularity=granularity,
        name=f"init.{grid.name}",
    )


def stencil_step_task(
    step: int,
    src: Grid,
    dst: Grid,
    workload: StencilWorkload,
    granularity: float | None = None,
) -> TaskSpec:
    """One interior update sweep ``src -> dst`` (Fig. 6b lines 10-17)."""
    shape = src.shape
    rows, cols = shape
    return pfor_task(
        (1, 1),
        (rows - 1, cols - 1),
        body=_step_body(src, dst, workload.diffusion, shape),
        reads=lambda box, g=src: {g: expand_box(g, box, 1)},
        writes=lambda box, g=dst: {g: box_region(g, box)},
        flops_per_element=workload.flops_per_cell,
        granularity=granularity,
        name=f"step{step}",
    )


def stencil_program(
    workload: StencilWorkload,
    nodes: int,
    *,
    cores_per_node: int = 20,
    config: RuntimeConfig | None = None,
) -> TaskProgram:
    """The driver's exact submission structure, built without a runtime.

    Phases mirror :func:`stencil_allscale`'s treeture barriers: one phase
    per initialization sweep, one per timestep.  Task names and
    granularities match what the driver submits (same builders, same
    :func:`~repro.api.prec.loop_granularity`), so an offline placement
    plan extracted from this program pins the runtime's real tasks.
    """
    config = config or RuntimeConfig()
    shape = workload.global_shape(nodes)
    rows, cols = shape

    def gran(total: float) -> float:
        return loop_granularity(
            total,
            nodes,
            cores_per_node,
            config.min_task_size,
            config.oversubscription,
        )

    grid_a = Grid(shape, name="stencil.A")
    grid_b = Grid(shape, name="stencil.B")
    program = TaskProgram(f"stencil[{nodes}]")
    for grid in (grid_a, grid_b):
        program.add_phase(
            stencil_init_task(grid, granularity=gran(float(rows * cols)))
        )
    interior = float((rows - 2) * (cols - 2))
    src, dst = grid_a, grid_b
    for step in range(workload.timesteps):
        program.add_phase(
            stencil_step_task(
                step, src, dst, workload, granularity=gran(interior)
            )
        )
        src, dst = dst, src
    return program


def stencil_allscale(
    cluster: Cluster,
    workload: StencilWorkload,
    config: RuntimeConfig | None = None,
    policy: SchedulingPolicy | None = None,
    on_runtime=None,
) -> AppResult:
    """Run the AllScale port and return the measured result.

    The returned extras include the runtime (``"runtime"``) so tests can
    inspect final data distribution and invariants.  ``on_runtime`` is
    called with the assembled runtime before the driver starts — the
    churn bench uses it to attach an elasticity controller whose
    membership changes then run concurrently with the timesteps.
    """
    if config is None:
        config = RuntimeConfig()
    config = replace_functional(config, workload.functional)
    runtime = AllScaleRuntime(cluster, config, policy)
    shape = workload.global_shape(cluster.num_nodes)
    rows, cols = shape
    grid_a = Grid(shape, name="stencil.A")
    grid_b = Grid(shape, name="stencil.B")
    runtime.register_item(grid_a)
    runtime.register_item(grid_b)
    if on_runtime is not None:
        on_runtime(runtime)

    def driver() -> Generator:
        if runtime.balancer is not None:
            runtime.balancer.start()
        # initialization phase (Fig. 6b lines 5-7): first-touch spreads A
        # and B across the nodes through the scheduling policy
        for grid in (grid_a, grid_b):
            init = runtime.submit(
                stencil_init_task(
                    grid,
                    granularity=default_granularity(
                        runtime, float(rows * cols)
                    ),
                )
            )
            yield init.future
        t0 = runtime.now
        interior = float((rows - 2) * (cols - 2))
        src, dst = grid_a, grid_b
        for step in range(workload.timesteps):
            sweep = runtime.submit(
                stencil_step_task(
                    step,
                    src,
                    dst,
                    workload,
                    granularity=default_granularity(runtime, interior),
                )
            )
            yield sweep.future  # the swap(A, B) barrier of Fig. 6b line 18
            src, dst = dst, src
        if runtime.balancer is not None:
            runtime.balancer.stop()
        return runtime.now - t0, src

    result_future = runtime.spawn(driver())
    runtime.run()
    if not result_future.done:
        raise RuntimeError("stencil AllScale driver did not complete")
    elapsed, final_grid = result_future.value
    return AppResult(
        app="stencil",
        system="allscale",
        nodes=cluster.num_nodes,
        elapsed=elapsed,
        work=workload.total_flops(cluster.num_nodes),
        extras={"runtime": runtime, "final_grid": final_grid},
    )


def stencil_mpi(cluster: Cluster, workload: StencilWorkload) -> AppResult:
    """Run the MPI reference port."""
    shape = workload.global_shape(cluster.num_nodes)
    rows, cols = shape
    blocks = grid_block_decomposition(shape, cluster.num_nodes)
    plan = plan_halo_exchange(blocks, radius=1, bytes_per_element=8)
    c = workload.diffusion
    functional = workload.functional
    final_fields: dict[int, np.ndarray] = {}

    def rank_main(comm: Communicator) -> Generator:
        rank = comm.rank
        block = blocks[rank]
        # local array covers the block plus a one-cell ghost ring
        ghost = Box(
            (max(0, block.lo[0] - 1), max(0, block.lo[1] - 1)),
            (min(rows, block.hi[0] + 1), min(cols, block.hi[1] + 1)),
        )
        field = prev = None
        if functional:
            field = np.add.outer(
                np.arange(ghost.lo[0], ghost.hi[0], dtype=np.float64),
                np.arange(ghost.lo[1], ghost.hi[1], dtype=np.float64),
            )
            prev = field.copy()
        yield comm.compute(block.size() * 2.0)  # initialization sweep
        yield from comm.barrier(tag=800)
        t0 = comm.engine.now
        for step in range(workload.timesteps):
            # exchange ghost values (bytes always; values when functional)
            base_tag = 1000
            for idx, transfer in enumerate(plan.transfers):
                if transfer.src == rank:
                    value = None
                    if functional:
                        value = _slab(field, ghost, transfer.box)
                    comm.isend(
                        transfer.dst, transfer.nbytes, value, base_tag + idx
                    )
            for idx, transfer in enumerate(plan.transfers):
                if transfer.dst == rank:
                    value = yield comm.recv(transfer.src, base_tag + idx)
                    if functional:
                        _write_slab(field, ghost, transfer.box, value)
            yield comm.compute(block.size() * workload.flops_per_cell)
            if functional:
                prev[...] = field
                interior = _interior_slices(block, ghost, rows, cols)
                gi, gj = interior
                core = prev[gi, gj]
                up = prev[_shift(gi, -1), gj]
                down = prev[_shift(gi, +1), gj]
                left = prev[gi, _shift(gj, -1)]
                right = prev[gi, _shift(gj, +1)]
                field[gi, gj] = core + c * (up + down + left + right - 4 * core)
        yield from comm.barrier(tag=801)
        elapsed = comm.engine.now - t0
        if functional:
            final_fields[rank] = field
        return elapsed

    times = run_spmd(cluster, rank_main)
    result = AppResult(
        app="stencil",
        system="mpi",
        nodes=cluster.num_nodes,
        elapsed=max(times),
        work=workload.total_flops(cluster.num_nodes),
        extras={"blocks": blocks, "ghosts": final_fields},
    )
    return result


# -- functional-mode helpers -----------------------------------------------------------


def _slab(field: np.ndarray, ghost: Box, box: Box) -> np.ndarray:
    si = slice(box.lo[0] - ghost.lo[0], box.hi[0] - ghost.lo[0])
    sj = slice(box.lo[1] - ghost.lo[1], box.hi[1] - ghost.lo[1])
    return field[si, sj].copy()


def _write_slab(field: np.ndarray, ghost: Box, box: Box, values: np.ndarray) -> None:
    si = slice(box.lo[0] - ghost.lo[0], box.hi[0] - ghost.lo[0])
    sj = slice(box.lo[1] - ghost.lo[1], box.hi[1] - ghost.lo[1])
    field[si, sj] = values


def _interior_slices(
    block: Box, ghost: Box, rows: int, cols: int
) -> tuple[slice, slice]:
    """Index slices (into the ghosted array) of the writable interior."""
    lo0 = max(block.lo[0], 1) - ghost.lo[0]
    hi0 = min(block.hi[0], rows - 1) - ghost.lo[0]
    lo1 = max(block.lo[1], 1) - ghost.lo[1]
    hi1 = min(block.hi[1], cols - 1) - ghost.lo[1]
    return slice(lo0, hi0), slice(lo1, hi1)


def _shift(s: slice, delta: int) -> slice:
    return slice(s.start + delta, s.stop + delta)


def replace_functional(config: RuntimeConfig, functional: bool) -> RuntimeConfig:
    """Copy ``config`` with its ``functional`` flag forced to the workload's."""
    from dataclasses import replace as dc_replace

    if config.functional == functional:
        return config
    return dc_replace(config, functional=functional)


def sequential_reference(
    workload: StencilWorkload, nodes: int
) -> np.ndarray:
    """The sequential kernel of Fig. 6a — ground truth for functional tests."""
    shape = workload.global_shape(nodes)
    field = np.add.outer(
        np.arange(shape[0], dtype=np.float64),
        np.arange(shape[1], dtype=np.float64),
    )
    c = workload.diffusion
    scratch = field.copy()
    for _ in range(workload.timesteps):
        scratch[...] = field
        field[1:-1, 1:-1] = scratch[1:-1, 1:-1] + c * (
            scratch[:-2, 1:-1]
            + scratch[2:, 1:-1]
            + scratch[1:-1, :-2]
            + scratch[1:-1, 2:]
            - 4.0 * scratch[1:-1, 1:-1]
        )
    return field
