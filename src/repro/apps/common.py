"""Shared application-result plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AppResult:
    """Outcome of one application run on one cluster configuration."""

    app: str
    system: str  # "allscale" | "mpi"
    nodes: int
    #: simulated seconds of the measured phase (initialization excluded)
    elapsed: float
    #: total metric units completed in the measured phase
    #: (FLOPs, particle updates, or queries)
    work: float
    extras: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Metric units per second — the quantity Fig. 7 plots."""
        if self.elapsed <= 0:
            raise ValueError(
                f"{self.app}/{self.system}@{self.nodes}: non-positive elapsed "
                f"time {self.elapsed!r}"
            )
        return self.work / self.elapsed

    def __repr__(self) -> str:
        return (
            f"AppResult({self.app}/{self.system}, nodes={self.nodes}, "
            f"throughput={self.throughput:.4g}/s)"
        )
