"""Ablation C — scheduling policy impact (Algorithm 2, line 3/12).

The data-requirement-aware placement of Algorithm 2 is what keeps tasks on
the nodes owning their data.  Replacing the policy with round-robin or
random placement forces continual data migration; this bench quantifies
the throughput cost and the migration traffic.
"""

from benchmarks.conftest import run_once
from repro.apps.stencil import StencilWorkload, stencil_allscale
from repro.bench.report import render_table
from repro.runtime.config import RuntimeConfig
from repro.runtime.policies import DataAwarePolicy, RandomPolicy, RoundRobinPolicy
from repro.sim.cluster import Cluster, meggie_like_spec

NODES = 8
WORKLOAD = StencilWorkload(n_per_node=4000, timesteps=3, functional=False)


def run_policy(policy):
    result = stencil_allscale(
        Cluster(meggie_like_spec(NODES)),
        WORKLOAD,
        RuntimeConfig(functional=False, oversubscription=2),
        policy=policy,
    )
    runtime = result.extras["runtime"]
    return {
        "gflops": result.throughput / 1e9,
        "migrations": runtime.metrics.counter("dm.migrations"),
        "migrated_bytes": runtime.metrics.counter("dm.migrated_bytes"),
    }


def run_ablation():
    return {
        "data-aware": run_policy(DataAwarePolicy()),
        "round-robin": run_policy(RoundRobinPolicy()),
        "random": run_policy(RandomPolicy(seed=5)),
    }


def test_ablation_scheduling_policies(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["policy", "GFLOPS", "migrations", "migrated bytes"],
            [
                (
                    name,
                    f"{r['gflops']:.1f}",
                    f"{r['migrations']:.0f}",
                    f"{r['migrated_bytes']:.3g}",
                )
                for name, r in results.items()
            ],
        )
    )
    for name, r in results.items():
        benchmark.extra_info[f"{name}_gflops"] = r["gflops"]
    aware = results["data-aware"]
    # the data-aware policy wins and does (almost) no migration after init
    for other in ("round-robin", "random"):
        assert aware["gflops"] > results[other]["gflops"]
        assert aware["migrated_bytes"] < results[other]["migrated_bytes"]
