"""Ablation D — query aggregation for the AllScale TPC port.

Paper §4.2: the MPI TPC "aggregates multiple queries to reduce latency
sensitivity and improve bandwidth utilization.  However, such an
optimization, while technically possible, has not yet been integrated into
our prototype."  The ``task_batch`` knob integrates the *naive* version of
that optimization — bundling whole queries into shared task trees.

Finding (recorded in EXPERIMENTS.md): bundling cuts remote task transfers
substantially, but throughput does **not** recover — bundles serialize the
per-sub-tree work of all their queries, trading communication for lost
parallelism.  MPI's aggregation works because each rank processes its
batch as independent fine-grained loop iterations; recovering AllScale
performance needs aggregation *below* the task interface (e.g. runtime-
level task fusion), which is precisely why the paper calls the integration
non-trivial and leaves it to future work.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.apps.tpc import TPCWorkload, make_problem, tpc_allscale
from repro.bench.report import render_table
from repro.runtime.config import RuntimeConfig
from repro.sim.cluster import Cluster, meggie_like_spec

NODES = 16
BASE = TPCWorkload(
    total_points=2**29,
    depth=16,
    queries_total=256,
    functional=False,
    visit_flops=150.0,
    point_flops=30.0,
    task_subtree_height=9,
)
BATCHES = (1, 8, 32)


def run_ablation():
    out = {}
    for batch in BATCHES:
        workload = replace(BASE, task_batch=batch)
        problem = make_problem(workload, NODES)
        result = tpc_allscale(
            Cluster(meggie_like_spec(NODES)),
            workload,
            RuntimeConfig(functional=False, oversubscription=2),
            problem=problem,
        )
        runtime = result.extras["runtime"]
        out[batch] = {
            "qps": result.throughput,
            "remote_tasks": runtime.metrics.counter("sched.remote_dispatch"),
        }
    return out


def test_ablation_tpc_batching(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["task batch", "queries/s", "remote task transfers"],
            [
                (str(b), f"{r['qps']:.0f}", f"{r['remote_tasks']:.0f}")
                for b, r in results.items()
            ],
        )
    )
    for b, r in results.items():
        benchmark.extra_info[f"batch{b}_qps"] = r["qps"]
    # aggregation reduces task transfers monotonically (saturating once
    # each bundle touches every sub-tree) ...
    assert results[32]["remote_tasks"] < results[1]["remote_tasks"] / 2
    assert results[8]["remote_tasks"] < results[1]["remote_tasks"]
    # ... but naive bundling does not recover throughput: the lost intra-
    # bundle parallelism offsets the saved messages (see module docstring)
    assert results[32]["qps"] > 0.5 * results[1]["qps"]
    assert results[32]["qps"] < 1.5 * results[1]["qps"]
