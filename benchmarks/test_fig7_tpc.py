"""Regenerates Fig. 7, right panel: TPC throughput [queries/s].

Shape criteria (paper §4.2): "MPI obtains higher performance, while
AllScale can only gain performance improvements up to 8 nodes" — the many
small, unaggregated per-sub-tree tasks make the AllScale traversal
latency-sensitive, while the MPI reference aggregates query batches.

* at 1 node the two systems are comparable;
* MPI keeps improving through 64 nodes;
* AllScale clearly trails MPI at scale, with the gap growing;
* AllScale's gains flatten beyond ~8–16 nodes.
"""

from benchmarks.conftest import QUICK, attach_series, run_once
from repro.bench.figures import fig7_tpc


def test_fig7_tpc(benchmark):
    series = run_once(benchmark, lambda: fig7_tpc(quick=QUICK))
    attach_series(benchmark, series)

    first = series.points[0]
    assert first.ratio > 0.8, "single-node systems should be comparable"

    # MPI monotonically improves
    for prev, cur in zip(series.points, series.points[1:]):
        assert cur.mpi > prev.mpi

    if not QUICK:
        last = series.point_at(64)
        mid = series.point_at(8)
        # the gap at scale: AllScale well below MPI at 64 nodes
        assert last.ratio < 0.5, (
            f"expected AllScale ≪ MPI at 64 nodes, got ratio {last.ratio:.2f}"
        )
        # the gap grows with node count
        assert last.ratio < first.ratio
        # flattening: the 8→64 gain is far below the 8× ideal
        assert last.allscale / mid.allscale < 3.0
        # ... while MPI keeps a healthy fraction of ideal scaling
        assert last.mpi / mid.mpi > 3.0
