"""Ablation F — GPU offloading crossover (variant selection, Example 2.3).

The paper motivates runtime data control with, among others, "the
offloading of computation to GPUs".  With device variants attached to the
tasks, the scheduling policy picks CPU or GPU per task by comparing
end-to-end costs (transfers + launch vs. core time).  This bench sweeps
arithmetic intensity: transfer-bound kernels stay on the CPU, compute-
bound kernels offload and win.
"""

from benchmarks.conftest import run_once
from repro.api import box_region
from repro.api.pfor import pfor
from repro.bench.report import render_table
from repro.items.grid import Grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.sim.accelerator import AcceleratorSpec
from repro.sim.cluster import Cluster, ClusterSpec

NODES = 4
SHAPE = (2048, 1024)
INTENSITIES = (4.0, 64.0, 1024.0)  # FLOPs per element


def make_cluster(gpus: int) -> Cluster:
    return Cluster(
        ClusterSpec(
            num_nodes=NODES,
            cores_per_node=4,
            flops_per_core=2.4e9,
            gpus_per_node=gpus,
            gpu=AcceleratorSpec(),  # 4 TFLOP/s, PCIe-class link
        )
    )


def run_sweep_with_gpu_variant(gpus: int, intensity: float) -> dict:
    from repro.api.prec import PrecFunction, default_granularity
    from repro.api.pfor import _split_box
    from repro.regions.box import Box

    runtime = AllScaleRuntime(
        make_cluster(gpus), RuntimeConfig(functional=False, oversubscription=2)
    )
    grid = Grid(SHAPE, name="g")
    runtime.register_item(grid, placement=grid.decompose(NODES))
    total_flops = SHAPE[0] * SHAPE[1] * intensity
    recursion = PrecFunction(
        base_test=lambda box: False,  # granularity decides
        base=lambda ctx, box: None,
        split=_split_box,
        reads=lambda box: {grid: box_region(grid, box)},
        writes=lambda box: {grid: box_region(grid, box)},
        cost=lambda box: intensity * box.size(),
        size=lambda box: float(box.size()),
        name="kernel",
    )
    granularity = default_granularity(runtime, float(SHAPE[0] * SHAPE[1]))
    root = recursion.task(Box.full(SHAPE), granularity)

    def add_gpu_variant(task):
        task.gpu_flops = task.flops
        if task.splitter is not None:
            original = task.splitter

            def wrapped():
                children = original()
                for child in children:
                    add_gpu_variant(child)
                return children

            task.splitter = wrapped
        return task

    runtime.wait(runtime.submit(add_gpu_variant(root)))
    elapsed = runtime.now
    return {
        "gflops": total_flops / elapsed / 1e9,
        "offloads": runtime.metrics.counter("proc.gpu_offloads"),
    }


def run_ablation():
    out = {}
    for intensity in INTENSITIES:
        cpu = run_sweep_with_gpu_variant(0, intensity)
        gpu = run_sweep_with_gpu_variant(1, intensity)
        out[intensity] = {
            "cpu_gflops": cpu["gflops"],
            "gpu_gflops": gpu["gflops"],
            "offloads": gpu["offloads"],
            "speedup": gpu["gflops"] / cpu["gflops"],
        }
    return out


def test_ablation_gpu_offload(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["FLOPs/elem", "CPU GFLOPS", "+GPU GFLOPS", "offloads", "speedup"],
            [
                (
                    f"{intensity:g}",
                    f"{r['cpu_gflops']:.1f}",
                    f"{r['gpu_gflops']:.1f}",
                    f"{r['offloads']:.0f}",
                    f"{r['speedup']:.2f}×",
                )
                for intensity, r in results.items()
            ],
        )
    )
    for intensity, r in results.items():
        benchmark.extra_info[f"speedup_{intensity:g}"] = r["speedup"]
    # transfer-bound kernels stay on the CPU: no offloads, no regression
    low = results[INTENSITIES[0]]
    assert low["offloads"] == 0
    assert low["speedup"] > 0.95
    # compute-bound kernels offload and win clearly
    high = results[INTENSITIES[-1]]
    assert high["offloads"] > 0
    assert high["speedup"] > 3.0
