"""Ablation G — closing the TPC gap with lookup caching (paper §6).

"Current development efforts aim at closing the performance gap to
handcrafted MPI-based implementations."  One concrete step in that
direction, implemented here as an extension: caching Algorithm-1 lookup
results at their origin, invalidated by the item's ownership version.
TPC's tree ownership is static after initialization, so the cache removes
most of the per-task index traffic.
"""

from benchmarks.conftest import run_once
from repro.apps.tpc import TPCWorkload, make_problem, tpc_allscale, tpc_mpi
from repro.bench.report import render_table
from repro.runtime.config import RuntimeConfig
from repro.sim.cluster import Cluster, meggie_like_spec

NODES = 16
# coarser task units + a longer query stream: each origin quickly learns
# the (static) placement of every sub-tree, so the cache reaches a high
# hit rate — the regime the optimization targets
WORKLOAD = TPCWorkload(
    total_points=2**29,
    depth=16,
    queries_total=512,
    functional=False,
    visit_flops=150.0,
    point_flops=30.0,
    task_subtree_height=11,
    submission_waves=16,  # streamed arrival: later waves hit a warm cache
)


def run_ablation():
    problem = make_problem(WORKLOAD, NODES)
    results = {}
    for label, caching in (("prototype (no cache)", False), ("with lookup cache", True)):
        result = tpc_allscale(
            Cluster(meggie_like_spec(NODES)),
            WORKLOAD,
            RuntimeConfig(
                functional=False, oversubscription=2, index_caching=caching
            ),
            problem=problem,
        )
        index = result.extras["runtime"].index
        results[label] = {
            "qps": result.throughput,
            "lookup_hops": index.lookup_hops,
            "cache_hits": index.cache_hits,
        }
    mpi = tpc_mpi(Cluster(meggie_like_spec(NODES)), WORKLOAD, problem=problem)
    results["MPI reference"] = {
        "qps": mpi.throughput,
        "lookup_hops": 0,
        "cache_hits": 0,
    }
    return results


def test_ablation_index_cache(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["configuration", "queries/s", "lookup hops", "cache hits"],
            [
                (
                    label,
                    f"{r['qps']:.0f}",
                    f"{r['lookup_hops']}",
                    f"{r['cache_hits']}",
                )
                for label, r in results.items()
            ],
        )
    )
    base = results["prototype (no cache)"]
    cached = results["with lookup cache"]
    mpi = results["MPI reference"]
    benchmark.extra_info["base_qps"] = base["qps"]
    benchmark.extra_info["cached_qps"] = cached["qps"]
    benchmark.extra_info["mpi_qps"] = mpi["qps"]
    # the cache removes index traffic and narrows (without erasing) the gap
    assert cached["cache_hits"] > 0
    assert cached["lookup_hops"] < base["lookup_hops"] / 2
    assert cached["qps"] >= base["qps"]
    gap_before = base["qps"] / mpi["qps"]
    gap_after = cached["qps"] / mpi["qps"]
    assert gap_after >= gap_before
