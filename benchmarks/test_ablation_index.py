"""Ablation B — hierarchical index lookup cost (Fig. 5 / Algorithm 1).

Each process maintains O(log₂ P) regions and a lookup escalates through at
most the hierarchy height, so remote-region lookups should cost a
logarithmic number of hops — this bench measures mean/max hops and mean
resolution latency across process counts.
"""

import random

from benchmarks.conftest import run_once
from repro.bench.report import render_table
from repro.items.grid import Grid
from repro.runtime.index import HierarchicalIndex
from repro.sim.cluster import Cluster, ClusterSpec

PROCESS_COUNTS = (4, 16, 64, 256)
LOOKUPS = 200


def run_point(num_processes: int):
    cluster = Cluster(ClusterSpec(num_nodes=num_processes, cores_per_node=1))
    index = HierarchicalIndex(cluster.network, num_processes)
    grid = Grid((num_processes * 64, 64), name="g")
    index.register_item(grid)
    blocks = grid.decompose(num_processes)
    for pid, region in enumerate(blocks):
        index.update_ownership(grid, pid, region)

    rng = random.Random(31)
    hops = []
    latencies = []
    for _ in range(LOOKUPS):
        origin = rng.randrange(num_processes)
        target = rng.randrange(num_processes)
        before_hops = index.lookup_hops
        start = cluster.engine.now
        done = cluster.engine.spawn(
            index.lookup(grid, blocks[target], origin)
        )
        cluster.engine.run()
        mapping, unresolved = done.value
        assert unresolved.is_empty()
        hops.append(index.lookup_hops - before_hops)
        latencies.append(cluster.engine.now - start)
    return {
        "mean_hops": sum(hops) / len(hops),
        "max_hops": max(hops),
        "mean_latency_us": 1e6 * sum(latencies) / len(latencies),
    }


def run_ablation():
    return {p: run_point(p) for p in PROCESS_COUNTS}


def test_ablation_index_lookup(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["processes", "mean hops", "max hops", "mean latency [µs]"],
            [
                (
                    str(p),
                    f"{r['mean_hops']:.2f}",
                    str(r["max_hops"]),
                    f"{r['mean_latency_us']:.2f}",
                )
                for p, r in results.items()
            ],
        )
    )
    for p, r in results.items():
        benchmark.extra_info[f"hops_p{p}"] = r["mean_hops"]
    # logarithmic growth: hops grow by a bounded additive amount per 4× P,
    # nowhere near linearly in P
    assert results[256]["max_hops"] <= 3 * results[16]["max_hops"] + 6
    assert results[256]["mean_hops"] < 24
    # locality: lookups of local data are free
    assert results[4]["mean_hops"] < results[256]["mean_hops"] + 8
