"""Ablation E — load balancing through data migration (paper §3.2/§6).

"Inter-node load balancing is achieved through actively managing the
distribution of data": under a spatially skewed workload (one half of the
grid costs 7× more per element), the block decomposition leaves some
nodes as stragglers.  With the balancer enabled, monitoring detects the
imbalance, owned regions migrate from busy to idle nodes, and — because
Algorithm 2 sends tasks to the data — future sweeps follow automatically.
"""

from benchmarks.conftest import run_once
from repro.api.prec import PrecFunction
from repro.api.pfor import _split_box
from repro.api.access import box_region
from repro.bench.report import render_table
from repro.items.grid import Grid
from repro.regions.box import Box
from repro.runtime.balancer import LoadBalancer
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import AllScaleRuntime
from repro.sim.cluster import Cluster, ClusterSpec

NODES = 4
SHAPE = (512, 256)
STEPS = 8
HEAVY_ROWS = SHAPE[0] // 4  # the top quarter is 7× as expensive
FLOPS_LIGHT = 2_000.0
FLOPS_HEAVY = 14_000.0


def _box_cost(box: Box) -> float:
    heavy = max(0, min(box.hi[0], HEAVY_ROWS) - box.lo[0]) * (
        box.hi[1] - box.lo[1]
    )
    light = box.size() - heavy
    return heavy * FLOPS_HEAVY + light * FLOPS_LIGHT


def run_config(use_balancer: bool):
    cluster = Cluster(
        ClusterSpec(num_nodes=NODES, cores_per_node=4, flops_per_core=1e9)
    )
    runtime = AllScaleRuntime(
        cluster, RuntimeConfig(functional=False, oversubscription=2)
    )
    grid = Grid(SHAPE, name="skewed")
    runtime.register_item(grid, placement=grid.decompose(NODES))
    balancer = None
    if use_balancer:
        balancer = LoadBalancer(
            runtime,
            interval=2e-4,
            imbalance_threshold=1.3,
            slice_fraction=0.3,
        )
        balancer.start()

    sweep = PrecFunction(
        base_test=lambda box: box.size() <= 2048,
        base=lambda ctx, box: None,
        split=_split_box,
        writes=lambda box: {grid: box_region(grid, box)},
        cost=_box_cost,
        size=lambda box: float(box.size()),
        name="skewed-sweep",
    )

    def driver():
        t0 = runtime.now
        for _step in range(STEPS):
            root = sweep.task(Box.full(SHAPE), granularity=2048)
            yield runtime.submit(root).future
        return runtime.now - t0

    elapsed = runtime.wait_process(driver())
    if balancer is not None:
        balancer.stop()
    runtime.check_ownership_invariants()
    return {
        "elapsed_ms": elapsed * 1e3,
        "rebalances": balancer.rebalances if balancer else 0,
        "migrated_bytes": runtime.metrics.counter("dm.migrated_bytes"),
    }


def run_ablation():
    return {
        "static blocks": run_config(use_balancer=False),
        "with balancer": run_config(use_balancer=True),
    }


def test_ablation_load_balancer(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["configuration", "elapsed [ms]", "rebalances", "migrated bytes"],
            [
                (
                    name,
                    f"{r['elapsed_ms']:.3f}",
                    f"{r['rebalances']}",
                    f"{r['migrated_bytes']:.3g}",
                )
                for name, r in results.items()
            ],
        )
    )
    static = results["static blocks"]
    balanced = results["with balancer"]
    benchmark.extra_info["static_ms"] = static["elapsed_ms"]
    benchmark.extra_info["balanced_ms"] = balanced["elapsed_ms"]
    # the balancer actually moved data, and it paid off
    assert balanced["rebalances"] > 0
    assert balanced["elapsed_ms"] < static["elapsed_ms"] * 0.95
