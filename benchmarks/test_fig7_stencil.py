"""Regenerates Fig. 7, left panel: stencil weak-scaling throughput [GFLOPS].

Shape criteria (paper §4.2: "comparable performance and scalability"):

* AllScale stays within a modest constant factor of MPI at every node
  count (no widening gap);
* both systems scale near-linearly to 64 nodes (parallel efficiency well
  above 0.5).
"""

from benchmarks.conftest import QUICK, attach_series, run_once
from repro.bench.figures import fig7_stencil
from repro.bench.harness import parallel_efficiency


def test_fig7_stencil(benchmark):
    series = run_once(benchmark, lambda: fig7_stencil(quick=QUICK))
    attach_series(benchmark, series)

    for point in series.points:
        assert 0.5 <= point.ratio <= 1.2, (
            f"AllScale/MPI ratio {point.ratio:.2f} at {point.nodes} nodes "
            "outside the 'comparable performance' band"
        )
    assert parallel_efficiency(series, "allscale") > 0.6
    assert parallel_efficiency(series, "mpi") > 0.6
    # throughput strictly increases with node count for both systems
    for prev, cur in zip(series.points, series.points[1:]):
        assert cur.allscale > prev.allscale
        assert cur.mpi > prev.mpi
