"""Regenerates Table 1 — the list of target application codes."""

from benchmarks.conftest import run_once
from repro.bench.report import render_table1
from repro.bench.tables import table1


def test_table1(benchmark):
    rows = run_once(benchmark, table1)
    print()
    print(render_table1(rows))
    names = [row.name for row in rows]
    assert names == ["stencil", "iPiC3D", "TPC"]
    structures = [row.data_structure for row in rows]
    assert structures == [
        "regular 2D grid",
        "multiple regular 3D grids",
        "kd-tree",
    ]
    metrics = [row.metric for row in rows]
    assert metrics == [
        "FLOPS",
        "particle updates per second",
        "queries per second",
    ]
    benchmark.extra_info["rows"] = [row.as_tuple() for row in rows]
