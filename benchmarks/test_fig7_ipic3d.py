"""Regenerates Fig. 7, middle panel: iPiC3D throughput [particle updates/s].

Shape criteria: like the stencil, the real-world PIC application shows
comparable AllScale and MPI performance and near-linear weak scaling
(paper §4.2), with single-node throughput calibrated near the paper's
left edge (~6.5·10⁴ particle updates/s per node).
"""

from benchmarks.conftest import QUICK, attach_series, run_once
from repro.bench.figures import fig7_ipic3d
from repro.bench.harness import parallel_efficiency


def test_fig7_ipic3d(benchmark):
    series = run_once(benchmark, lambda: fig7_ipic3d(quick=QUICK))
    attach_series(benchmark, series)

    for point in series.points:
        assert 0.5 <= point.ratio <= 1.2, (
            f"AllScale/MPI ratio {point.ratio:.2f} at {point.nodes} nodes"
        )
    assert parallel_efficiency(series, "allscale") > 0.6
    assert parallel_efficiency(series, "mpi") > 0.6
    for prev, cur in zip(series.points, series.points[1:]):
        assert cur.allscale > prev.allscale
        assert cur.mpi > prev.mpi
    # calibration anchor: single node in the 10⁴–10⁵ updates/s decade
    single = series.points[0]
    assert 2e4 <= single.allscale <= 2e5
