"""Shared helpers for the benchmark suite.

Every benchmark regenerates one evaluation artifact of the paper (a table,
a Fig. 7 panel, or an ablation; see DESIGN.md's experiment index), asserts
the *shape* criteria recorded in EXPERIMENTS.md, prints the regenerated
rows (run with ``-s`` to see them), and attaches the raw numbers to
pytest-benchmark's ``extra_info``.

Set ``REPRO_BENCH_QUICK=1`` to shrink the sweeps for smoke runs.
"""

from __future__ import annotations

import os

import pytest

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


def attach_series(benchmark, series) -> None:
    from repro.bench.report import render_series, series_to_csv

    benchmark.extra_info["csv"] = series_to_csv(series)
    print()
    print(render_series(series))


def run_once(benchmark, fn):
    """Run a whole-artifact regeneration exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def quick() -> bool:
    return QUICK
