"""Ablation A — region scheme trade-off (Fig. 4b vs Fig. 4c).

The paper motivates two tree region schemes: flexible include/exclude
sub-trees (arbitrary distributions, per-switch-point cost) and blocked
bitmasks ("a much more efficient scheme, yet less flexible distribution
options").  This ablation quantifies both claims: operation cost and
representation size under block-aligned partitions, and expressiveness
under arbitrary node sets.
"""

import random
import time

from benchmarks.conftest import run_once
from repro.bench.report import render_table
from repro.regions.blocked_tree import BlockedTreeGeometry, BlockedTreeRegion
from repro.regions.tree import TreeGeometry, TreeRegion

DEPTH = 12
ROOT_HEIGHT = 6
OPS = 400


def _random_block_sets(rng, geometry, count):
    regions = []
    for _ in range(count):
        blocks = rng.sample(
            range(1, geometry.num_blocks + 1), rng.randint(1, geometry.num_blocks)
        )
        regions.append(blocks)
    return regions


def _time_ops(make_region, block_sets):
    regions = [make_region(blocks) for blocks in block_sets]
    start = time.perf_counter()
    for a in regions:
        for b in regions[: len(regions) // 8]:
            a.union(b)
            a.intersect(b)
            a.difference(b)
    elapsed = time.perf_counter() - start
    ops = len(regions) * (len(regions) // 8) * 3
    return ops / elapsed, regions


def run_ablation():
    rng = random.Random(99)
    blocked_geometry = BlockedTreeGeometry(depth=DEPTH, root_height=ROOT_HEIGHT)
    tree_geometry = TreeGeometry(DEPTH)
    block_sets = _random_block_sets(rng, blocked_geometry, 40)

    blocked_rate, blocked_regions = _time_ops(
        lambda blocks: BlockedTreeRegion.of_blocks(blocked_geometry, blocks),
        block_sets,
    )
    flexible_rate, flexible_regions = _time_ops(
        lambda blocks: TreeRegion.of_subtrees(
            tree_geometry,
            [blocked_geometry.block_root(b) for b in blocks],
        ),
        block_sets,
    )
    blocked_bits = blocked_regions[0].representation_size()
    flexible_marks = max(r.representation_size() for r in flexible_regions)
    return {
        "blocked_ops_per_s": blocked_rate,
        "flexible_ops_per_s": flexible_rate,
        "speedup": blocked_rate / flexible_rate,
        "blocked_repr_bits": blocked_bits,
        "flexible_repr_marks": flexible_marks,
    }


def test_ablation_region_schemes(benchmark):
    stats = run_once(benchmark, run_ablation)
    print()
    print(
        render_table(
            ["scheme", "region ops/s", "representation"],
            [
                (
                    "blocked bitmask (Fig. 4c)",
                    f"{stats['blocked_ops_per_s']:.3g}",
                    f"{stats['blocked_repr_bits']} bits",
                ),
                (
                    "flexible sub-trees (Fig. 4b)",
                    f"{stats['flexible_ops_per_s']:.3g}",
                    f"≤{stats['flexible_marks'] if 'flexible_marks' in stats else stats['flexible_repr_marks']} switch points",
                ),
            ],
        )
    )
    benchmark.extra_info.update(stats)
    # the paper's efficiency claim: bitmask ops are much cheaper
    assert stats["speedup"] > 10
    # the flexibility claim: only the flexible scheme expresses single nodes
    geometry = TreeGeometry(DEPTH)
    single = TreeRegion.of_nodes(geometry, [5])
    assert single.size() == 1
